//! # drcom — the Declarative Real-time Component model and runtime
//!
//! A Rust reproduction of *"A framework for adaptive real-time
//! applications: the declarative real-time OSGi component model"* (Gui, De
//! Florio, Sun, Blondia — Middleware 2008).
//!
//! A **DRCom** is a component whose real-time contract — task type,
//! priority, frequency, CPU claim, communication ports — is *declared* in
//! meta-data rather than implemented in code. The **DRCR** executive owns
//! every component's lifecycle, keeps a global view of all deployed
//! contracts, and resolves functional (port wiring) and non-functional
//! (CPU admission) constraints whenever the system changes, so components
//! can arrive and depart at run time without breaking admitted contracts.
//!
//! The crate layers over two substrates: [`rtos`] (an RTAI-like real-time
//! kernel simulator — the "small real-time part") and [`osgi`] (a module
//! framework with an LDAP-filtered service registry — the "large
//! non-real-time part").
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`xml`] | §2.3 | descriptor document parser |
//! | [`descriptor`] | §2.3 (Fig. 2) | the component contract, parse + validate |
//! | [`model`] | §2.3 | task spec, ports, properties, CPU claims |
//! | [`lifecycle`] | §2.2 (Fig. 1) | the component state machine |
//! | [`wiring`] | §2.3/§4.3 | functional constraint solving |
//! | [`admission`] | §2.2 | per-CPU reserved-budget ledger |
//! | [`resolve`] | §2.2/§4.3 | pluggable resolving services (utilization, RM, EDF) |
//! | [`reactive`] | §4.3 | the incremental constraint-node engine + naive oracle |
//! | [`hybrid`] | §3.1/§3.2 (Fig. 3) | the hybrid RT/non-RT component + async bridge |
//! | [`manage`] | §2.4 | the component management interface |
//! | [`drcr`] | §2.2 | the executive: event-driven resolution, cascades |
//! | [`enforce`] | §2.1/§5 | binding contracts: kernel budgets + violation monitor |
//! | [`contracts`] | §2.1/§5 | stochastic contract monitors + learned claim refinement |
//! | [`adapt`] | §2.4 | adaptation managers (load shedding, retuning) |
//! | [`adl`] | §6 (future work) | validated assemblies with explicit connections |
//! | [`parallel`] | §3/§6 | descriptor fleets on the parallel executor |
//! | [`runtime`] | §3 (Fig. 3) | the assembled split container |
//! | [`federation`] | §6 (future work) | multi-node sharding, failover, degradation |
//!
//! ## Quick start
//!
//! ```
//! use drcom::prelude::*;
//! use rtos::kernel::KernelConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rt = DrtRuntime::new(KernelConfig::new(1));
//! let camera = ComponentDescriptor::builder("camera")
//!     .periodic(100, 0, 2)
//!     .cpu_usage(0.1)
//!     .build()?;
//! rt.install_component(
//!     "demo.camera",
//!     ComponentProvider::new(camera, || {
//!         Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
//!             io.compute(SimDuration::from_micros(200));
//!         }))
//!     }),
//! )?;
//! rt.advance(SimDuration::from_millis(100));
//! assert_eq!(rt.component_state("camera"), Some(ComponentState::Active));
//! # Ok(())
//! # }
//! ```

pub mod adapt;
pub mod adl;
pub mod admission;
pub mod contracts;
pub mod descriptor;
pub mod drcr;
pub mod enforce;
pub mod error;
pub mod faults;
pub mod federation;
pub mod hybrid;
pub mod lifecycle;
pub mod manage;
pub mod model;
pub mod obs;
pub mod parallel;
pub mod reactive;
pub mod resolve;
pub mod rta;
pub mod runtime;
pub mod supervise;
pub mod view;
pub mod wiring;
pub mod xml;

pub use adapt::{
    AdaptationCommand, AdaptationManager, AdaptationPolicy, GracefulDegradation, LoadShedding,
};
pub use adl::{AdlError, Assembly, DeployedAssembly};
pub use contracts::{ContractOutcome, LearningConfig, StochasticMonitor, UsageEstimator};
pub use descriptor::{ComponentDescriptor, DescriptorBuilder};
pub use drcr::{
    ComponentProvider, Drcr, ResolutionStrategy, COMPONENT_SERVICE, PROP_COMPONENT_NAME,
};
pub use enforce::{ContractMonitor, EnforcementAction, EnforcementPolicy, Violation};
pub use error::{DescriptorError, DrcrError};
pub use faults::{
    FaultInjector, FaultKind, FaultPlan, InjectionLog, LinkRates, NodeFaultKind, NodeFaultPlan,
    StormRates,
};
pub use federation::{FailoverAccounting, Federation, FederationConfig};
pub use hybrid::{BridgeMode, FnLogic, RtIo, RtLogic};
pub use lifecycle::ComponentState;
pub use manage::{
    ComponentControl, ManagementReply, RequestToken, RtComponentManagement, MANAGEMENT_SERVICE,
};
pub use model::{
    CpuUsage, OperatingMode, PortInterface, PortSpec, PropertyValue, TaskSpec, BASE_MODE,
};
pub use obs::{
    BridgeEvent, DrcrEvent, FedEndpoint, FedEvent, Histogram, MetricsRegistry, MetricsReport,
};
pub use parallel::{FleetBridge, FleetMember};
pub use reactive::{AdmissionPolicy, NaiveResolver, ReactiveResolver};
pub use resolve::{
    AdmissionRuling, BatchAdmission, Decision, Resolver, ResolvingService, WiringCheck,
    RESOLVER_SERVICE,
};
pub use rta::{RtaAnalysis, RtaParams, RtaResolver, TaskWcrt};
pub use runtime::{DrcomActivator, DrtRuntime};
pub use supervise::{FaultDecision, QuarantineRule, RestartPolicy, SupervisionConfig};
pub use view::{ComponentInfo, SystemView};

/// Convenience re-exports for examples and downstream code.
pub mod prelude {
    pub use crate::descriptor::ComponentDescriptor;
    pub use crate::drcr::ComponentProvider;
    pub use crate::hybrid::{FnLogic, RtIo, RtLogic};
    pub use crate::lifecycle::ComponentState;
    pub use crate::manage::{ComponentControl, ManagementReply, RtComponentManagement};
    pub use crate::model::{PortInterface, PropertyValue};
    pub use crate::obs::{BridgeEvent, DrcrEvent, MetricsReport};
    pub use crate::runtime::DrtRuntime;
    pub use crate::supervise::{RestartPolicy, SupervisionConfig};
    pub use rtos::shm::DataType;
    pub use rtos::time::{SimDuration, SimTime};
}
