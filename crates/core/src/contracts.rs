//! Stochastic contract monitoring with learned admission claims.
//!
//! The deterministic [`crate::enforce::ContractMonitor`] judges a single
//! utilization window against `claimed × tolerance` — a point verdict that
//! is both noisy (one bad window convicts) and blind (a component that
//! over-declared its `cpuusage` is never corrected, so the capacity it
//! reserved but does not use stays stranded in the admission ledger).
//! This module closes both gaps with an *online estimator* per component:
//!
//! * **Estimation** — [`UsageEstimator`] folds the kernel's per-task
//!   `(cycles, cpu_time)` accounting into a fixed-bucket histogram of
//!   per-cycle cost fractions. Every input is virtual-time/counter
//!   derived, so two seeded runs advance the estimator identically and
//!   replay stays byte-identical.
//! * **Probabilistic verdicts** — instead of one window ratio, the monitor
//!   tracks the *rate* of over-claim cycles and convicts only when a
//!   one-sided Hoeffding bound puts the true rate above `p_max` with
//!   confidence `1 − delta`:
//!   `p̂ − sqrt(ln(1/δ) / 2n) > p_max`. A pure function of counts — no
//!   clock, no randomness.
//! * **Claim refinement** — once enough cycles are observed and the
//!   component is *not* in violation, a conservative quantile of the
//!   measured cost (upper bucket edge × safety margin) is published as a
//!   refined claim through [`crate::runtime::DrtRuntime::refine_claim`],
//!   which re-runs admission via [`crate::resolve::Resolver::on_contract_changed`].
//!   Over-declarers hand back their stranded capacity; peers that were
//!   rejected against the inflated claim re-admit.
//!
//! Under-declarers take the other exit: a stochastic violation routes
//! through the supervise policy path ([`crate::drcr::Drcr::quarantine_reason`]
//! keeps the typed evidence) exactly like a fault-storm quarantine, so
//! enforcement and supervision stay one vocabulary.

use crate::error::DrcrError;
use crate::lifecycle::ComponentState;
use crate::obs::DrcrEvent;
use crate::runtime::DrtRuntime;
use rtos::time::SimDuration;
use std::collections::HashMap;

/// Tuning for the estimator and the refinement loop.
#[derive(Debug, Clone)]
pub struct LearningConfig {
    /// Histogram resolution over the fraction domain `[0, 1]`.
    pub buckets: usize,
    /// Cost quantile published as the refined claim (upper bucket edge).
    pub quantile: f64,
    /// Safety multiplier applied on top of the quantile.
    pub margin: f64,
    /// Cycles observed before a refinement may be published.
    pub min_samples: u64,
    /// Publish only when `refined < declared × refine_ratio` — hysteresis
    /// against churn from marginal improvements.
    pub refine_ratio: f64,
    /// Tolerated true rate of over-claim cycles.
    pub p_max: f64,
    /// One-sided confidence parameter: convict only when the bound holds
    /// with probability ≥ `1 − delta`.
    pub delta: f64,
    /// Quarantine violators through the supervise path (else verdicts are
    /// only recorded and reported).
    pub quarantine: bool,
}

impl Default for LearningConfig {
    fn default() -> Self {
        LearningConfig {
            buckets: 64,
            quantile: 0.99,
            margin: 1.10,
            min_samples: 256,
            refine_ratio: 0.90,
            p_max: 0.05,
            delta: 1e-9,
            quarantine: true,
        }
    }
}

/// Online per-component execution-cost estimator: a fixed-bucket histogram
/// over per-cycle cost fractions plus over-claim rate counters. All state
/// advances on kernel counters (virtual time), never the host clock.
#[derive(Debug, Clone)]
pub struct UsageEstimator {
    /// Cycle counts per fraction bucket; bucket `i` covers
    /// `[i/n, (i+1)/n)` of the component's period.
    counts: Vec<u64>,
    /// Cycles whose cost fraction reached or exceeded 1.0.
    overflow: u64,
    /// Total cycles folded into the histogram.
    total: u64,
    /// Cycles judged against the current claim (rebased on claim change).
    checked: u64,
    /// Of those, cycles whose cost exceeded the claim.
    over: u64,
    /// Last `(task_cycles, task_cpu_time)` reading, or `None` after a
    /// lifecycle reset (fresh task ⇒ fresh accounting).
    baseline: Option<(u64, SimDuration)>,
    /// The claim the rate counters are judged against.
    claimed: f64,
}

impl UsageEstimator {
    fn new(buckets: usize, claimed: f64) -> Self {
        UsageEstimator {
            counts: vec![0; buckets.max(1)],
            overflow: 0,
            total: 0,
            checked: 0,
            over: 0,
            baseline: None,
            claimed,
        }
    }

    /// Folds `weight` cycles of mean per-cycle cost `fraction` into the
    /// histogram and the over-claim counters.
    pub fn observe(&mut self, fraction: f64, weight: u64) {
        if !fraction.is_finite() || fraction < 0.0 || weight == 0 {
            return;
        }
        let n = self.counts.len();
        if fraction >= 1.0 {
            self.overflow += weight;
        } else {
            let idx = ((fraction * n as f64) as usize).min(n - 1);
            self.counts[idx] += weight;
        }
        self.total += weight;
        self.checked += weight;
        if fraction > self.claimed {
            self.over += weight;
        }
    }

    /// Total cycles observed.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// Observed over-claim cycle rate `p̂` (0 when nothing was checked).
    pub fn over_rate(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.over as f64 / self.checked as f64
        }
    }

    /// One-sided Hoeffding lower confidence bound on the true over-claim
    /// rate: `max(0, p̂ − sqrt(ln(1/δ) / 2n))`. Deterministic in the
    /// counts.
    pub fn rate_lower_bound(&self, delta: f64) -> f64 {
        if self.checked == 0 {
            return 0.0;
        }
        let slack = ((1.0 / delta).ln() / (2.0 * self.checked as f64)).sqrt();
        (self.over_rate() - slack).max(0.0)
    }

    /// Conservative cost quantile: the *upper* edge of the bucket where
    /// the cumulative count reaches `q × total` (1.0 if it lands in the
    /// overflow bucket). Never under-reports the true quantile by more
    /// than zero and over-reports by at most one bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let n = self.counts.len();
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return (i + 1) as f64 / n as f64;
            }
        }
        1.0
    }

    /// Restarts over-claim accounting against a new claim (after a
    /// refinement or an operator contract change). The learned cost
    /// histogram is kept — the component's demand did not change, only
    /// the yardstick.
    fn rebase(&mut self, claimed: f64) {
        self.claimed = claimed;
        self.checked = 0;
        self.over = 0;
    }
}

/// One outcome from a [`StochasticMonitor::poll`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum ContractOutcome {
    /// A refined (measured) claim was published and re-admitted.
    Refined {
        /// The component whose claim was rewritten.
        component: String,
        /// The claim it declared before refinement.
        declared: f64,
        /// The published measured claim.
        refined: f64,
        /// Cycles the estimate is based on.
        samples: u64,
    },
    /// The over-claim rate is above `p_max` with high confidence.
    Violation {
        /// The convicted component.
        component: String,
        /// The claim it was judged against.
        claimed: f64,
        /// Observed over-claim cycle rate `p̂`.
        observed_rate: f64,
        /// Hoeffding lower bound on the true rate.
        rate_lower_bound: f64,
        /// Cycles the verdict is based on.
        samples: u64,
    },
}

/// Periodic stochastic contract checker. Create once, call
/// [`StochasticMonitor::poll`] from the management loop; it learns,
/// convicts, and refines as evidence accumulates.
#[derive(Debug)]
pub struct StochasticMonitor {
    config: LearningConfig,
    estimators: HashMap<String, UsageEstimator>,
    /// Components already convicted (no double conviction until rebased).
    flagged: HashMap<String, bool>,
    /// Transition-log entries already scanned for baseline resets.
    transitions_seen: usize,
    outcomes: Vec<ContractOutcome>,
}

impl StochasticMonitor {
    /// Creates a monitor with the given tuning.
    pub fn new(config: LearningConfig) -> Self {
        StochasticMonitor {
            config,
            estimators: HashMap::new(),
            flagged: HashMap::new(),
            transitions_seen: 0,
            outcomes: Vec::new(),
        }
    }

    /// The tuning in force.
    pub fn config(&self) -> &LearningConfig {
        &self.config
    }

    /// Every refinement and violation produced so far, in order.
    pub fn outcomes(&self) -> &[ContractOutcome] {
        &self.outcomes
    }

    /// The estimator for one component, if any cycles were observed.
    pub fn estimator(&self, name: &str) -> Option<&UsageEstimator> {
        self.estimators.get(name)
    }

    /// Samples every active periodic component's kernel accounting,
    /// advances its estimator, and applies verdicts: quarantine for
    /// high-confidence under-declarers, claim refinement for measured
    /// over-declarers. Returns the outcomes produced this sweep.
    ///
    /// # Errors
    ///
    /// Propagates [`DrcrError`] from applied actions.
    pub fn poll(&mut self, rt: &mut DrtRuntime) -> Result<Vec<ContractOutcome>, DrcrError> {
        // Any transition into Active means a fresh task instance with
        // fresh CPU accounting: drop the counter baseline (the learned
        // histogram survives — it describes the component, not the task).
        {
            let drcr = rt.drcr();
            let transitions = drcr.transitions();
            for t in &transitions[self.transitions_seen.min(transitions.len())..] {
                if t.to == ComponentState::Active {
                    if let Some(est) = self.estimators.get_mut(&t.component) {
                        est.baseline = None;
                    }
                }
            }
            self.transitions_seen = transitions.len();
        }
        let names = rt.drcr().component_names();
        let view = rt.drcr().system_view();
        let mut fresh = Vec::new();
        for name in names {
            if rt.component_state(&name) != Some(ComponentState::Active) {
                if let Some(est) = self.estimators.get_mut(&name) {
                    est.baseline = None;
                }
                continue;
            }
            let Some(task) = rt.drcr().task_of(&name) else {
                continue;
            };
            let Some(info) = view.component(&name) else {
                continue;
            };
            // Aperiodic components have no per-cycle cost model to learn.
            let Some(period_ns) = info.period_ns.filter(|&p| p > 0) else {
                continue;
            };
            let claimed = info.cpu_usage;
            let (cycles, cpu_time) = {
                let kernel = rt.kernel();
                match (kernel.task_cycles(task), kernel.task_cpu_time(task)) {
                    (Some(c), Some(t)) => (c, t),
                    _ => continue,
                }
            };
            let est = self
                .estimators
                .entry(name.clone())
                .or_insert_with(|| UsageEstimator::new(self.config.buckets, claimed));
            if est.claimed != claimed {
                // The yardstick moved (refinement round-trip or operator
                // change): restart rate accounting and allow reconviction.
                est.rebase(claimed);
                self.flagged.remove(&name);
            }
            let Some((c0, t0)) = est.baseline else {
                est.baseline = Some((cycles, cpu_time));
                continue;
            };
            let dc = cycles.saturating_sub(c0);
            if dc == 0 {
                continue;
            }
            let dt = cpu_time.saturating_sub(t0);
            est.baseline = Some((cycles, cpu_time));
            let fraction = dt.as_nanos() as f64 / dc as f64 / period_ns as f64;
            est.observe(fraction, dc);

            // Verdict first: a component convicted of under-declaring must
            // not also publish a refined (inflated) claim.
            let observed_rate = est.over_rate();
            let lower = est.rate_lower_bound(self.config.delta);
            let samples = est.checked;
            if lower > self.config.p_max && !self.flagged.get(&name).copied().unwrap_or(false) {
                self.flagged.insert(name.clone(), true);
                rt.drcr_mut().note(DrcrEvent::StochasticViolation {
                    component: name.clone(),
                    claimed,
                    observed_rate,
                    rate_lower_bound: lower,
                    samples,
                });
                let outcome = ContractOutcome::Violation {
                    component: name.clone(),
                    claimed,
                    observed_rate,
                    rate_lower_bound: lower,
                    samples,
                };
                if self.config.quarantine {
                    rt.quarantine_component(
                        &name,
                        &format!(
                            "stochastic contract violation: over-budget cycle rate \
                             {observed_rate:.3} (lower bound {lower:.3} > tolerated \
                             {:.3}, {samples} cycles) against claim {claimed:.3}",
                            self.config.p_max
                        ),
                    )?;
                }
                self.outcomes.push(outcome.clone());
                fresh.push(outcome);
                continue;
            }

            // Refinement: enough evidence, not in violation, and the
            // measured claim is meaningfully below the declared one.
            if est.total >= self.config.min_samples {
                let refined =
                    (est.quantile(self.config.quantile) * self.config.margin).clamp(0.001, 1.0);
                let total = est.total;
                if refined < claimed * self.config.refine_ratio {
                    rt.refine_claim(&name, refined, total)?;
                    let outcome = ContractOutcome::Refined {
                        component: name.clone(),
                        declared: claimed,
                        refined,
                        samples: total,
                    };
                    self.outcomes.push(outcome.clone());
                    fresh.push(outcome);
                }
            }
        }
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::ComponentDescriptor;
    use crate::drcr::ComponentProvider;
    use crate::faults::{FaultInjector, FaultPlan, InjectionLog};
    use crate::hybrid::{FnLogic, RtIo};
    use rtos::kernel::KernelConfig;
    use rtos::latency::TimerJitterModel;

    fn runtime() -> DrtRuntime {
        DrtRuntime::new(KernelConfig::new(31).with_timer(TimerJitterModel::ideal()))
    }

    /// Claims `claim` of a 10 ms period at `priority`, burns `burn_us` µs
    /// per cycle.
    fn steady(name: &str, claim: f64, priority: u8, burn_us: u64) -> ComponentProvider {
        let d = ComponentDescriptor::builder(name)
            .periodic(100, 0, priority)
            .cpu_usage(claim)
            .build()
            .unwrap();
        ComponentProvider::new(d, move || {
            Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_micros(burn_us));
            }))
        })
    }

    fn fast_config() -> LearningConfig {
        LearningConfig {
            min_samples: 50,
            ..LearningConfig::default()
        }
    }

    #[test]
    fn histogram_quantiles_take_the_conservative_upper_edge() {
        let mut est = UsageEstimator::new(10, 0.5);
        // 90 cycles at ~0.25, 10 cycles at ~0.85.
        est.observe(0.25, 90);
        est.observe(0.85, 10);
        assert_eq!(est.samples(), 100);
        // p50 lands in the 0.25 bucket [0.2, 0.3): upper edge 0.3.
        assert_eq!(est.quantile(0.5), 0.3);
        // p99 lands in the 0.85 bucket [0.8, 0.9): upper edge 0.9.
        assert_eq!(est.quantile(0.99), 0.9);
        // Saturated costs pin the quantile to 1.0.
        est.observe(1.7, 1000);
        assert_eq!(est.quantile(0.99), 1.0);
    }

    #[test]
    fn hoeffding_bound_needs_evidence_before_convicting() {
        let delta = 1e-9;
        let mut est = UsageEstimator::new(10, 0.1);
        // One over-claim cycle: p̂ = 1 but the bound stays at 0 — a single
        // sample cannot convict at 1−δ confidence.
        est.observe(0.5, 1);
        assert_eq!(est.over_rate(), 1.0);
        assert_eq!(est.rate_lower_bound(delta), 0.0);
        // 1000 consistently-over cycles leave no doubt.
        est.observe(0.5, 999);
        assert!(est.rate_lower_bound(delta) > 0.85);
        // The bound is monotone in n for a fixed p̂.
        let at_1000 = est.rate_lower_bound(delta);
        est.observe(0.5, 9000);
        assert!(est.rate_lower_bound(delta) > at_1000);
    }

    #[test]
    fn honest_components_are_neither_convicted_nor_refined() {
        let mut rt = runtime();
        // Claims 0.10, burns 0.095 — honest, and too close to the claim
        // for the hysteresis to bother republishing.
        rt.install_component("demo.ok", steady("ok", 0.10, 2, 950))
            .unwrap();
        let mut mon = StochasticMonitor::new(fast_config());
        for _ in 0..12 {
            rt.advance(SimDuration::from_millis(100));
            assert!(mon.poll(&mut rt).unwrap().is_empty());
        }
        assert_eq!(rt.component_state("ok"), Some(ComponentState::Active));
        assert_eq!(mon.estimator("ok").unwrap().over_rate(), 0.0);
        assert!(mon.estimator("ok").unwrap().samples() > 100);
    }

    #[test]
    fn over_declarer_gets_its_claim_refined_and_frees_peer_capacity() {
        let mut rt = runtime();
        // Claims 70% of the CPU, really uses ~10%.
        rt.install_component("demo.hog", steady("hog", 0.70, 2, 1000))
            .unwrap();
        // The peer's 35% cannot co-exist with a declared 70%: rejected.
        rt.install_component("demo.peer", steady("peer", 0.35, 3, 3000))
            .unwrap();
        assert_eq!(rt.component_state("hog"), Some(ComponentState::Active));
        assert_eq!(
            rt.component_state("peer"),
            Some(ComponentState::Unsatisfied),
            "peer must be stranded behind the inflated claim"
        );
        let mut mon = StochasticMonitor::new(fast_config());
        let mut refined = None;
        for _ in 0..12 {
            rt.advance(SimDuration::from_millis(100));
            for outcome in mon.poll(&mut rt).unwrap() {
                if let ContractOutcome::Refined {
                    component,
                    declared,
                    refined: r,
                    samples,
                } = outcome
                {
                    assert_eq!(component, "hog");
                    assert_eq!(declared, 0.70);
                    assert!(samples >= 50);
                    refined = Some(r);
                }
            }
            if refined.is_some() {
                break;
            }
        }
        let refined = refined.expect("no refinement published");
        // Quantile upper edge of the 0.10 bucket (×1.1 margin) — measured,
        // conservative, far below the declaration.
        assert!(refined > 0.10 && refined < 0.20, "refined {refined}");
        // The refinement round-trips through admission: the hog stays up
        // on its measured claim and the stranded peer re-admits.
        assert_eq!(rt.component_state("hog"), Some(ComponentState::Active));
        assert_eq!(rt.component_state("peer"), Some(ComponentState::Active));
        assert!(rt
            .drcr()
            .events_for("hog")
            .any(|e| matches!(e.event, DrcrEvent::ClaimRefined { .. })));
        // Refinement is one-shot under hysteresis: further polls stay
        // quiet.
        for _ in 0..5 {
            rt.advance(SimDuration::from_millis(100));
            assert!(mon.poll(&mut rt).unwrap().is_empty());
        }
    }

    #[test]
    fn under_declarer_is_quarantined_with_typed_evidence() {
        let mut rt = runtime();
        // Claims 5%, but a lying fault plan injects 1.5–2.5 ms of real
        // demand into every 10 ms cycle (~20%).
        let plan = std::rc::Rc::new(FaultPlan::lying(0xFEED, 10_000, (1_500_000, 2_500_000)));
        let log = InjectionLog::shared();
        let d = ComponentDescriptor::builder("sneak")
            .periodic(100, 0, 2)
            .cpu_usage(0.05)
            .build()
            .unwrap();
        let provider = ComponentProvider::new(d, {
            let (plan, log) = (plan.clone(), log.clone());
            move || {
                FaultInjector::wrap(
                    plan.clone(),
                    log.clone(),
                    Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                        io.compute(SimDuration::from_micros(100));
                    })),
                )
            }
        });
        rt.install_component("demo.sneak", provider).unwrap();
        rt.install_component("demo.ok", steady("ok", 0.10, 3, 900))
            .unwrap();
        let mut mon = StochasticMonitor::new(fast_config());
        let mut violation = None;
        for _ in 0..20 {
            rt.advance(SimDuration::from_millis(100));
            for outcome in mon.poll(&mut rt).unwrap() {
                if let ContractOutcome::Violation { component, .. } = &outcome {
                    assert_eq!(component, "sneak");
                    violation = Some(outcome.clone());
                }
            }
            if violation.is_some() {
                break;
            }
        }
        let Some(ContractOutcome::Violation {
            claimed,
            observed_rate,
            rate_lower_bound,
            samples,
            ..
        }) = violation
        else {
            panic!("under-declarer was never convicted");
        };
        assert_eq!(claimed, 0.05);
        assert!(observed_rate > 0.9, "rate {observed_rate}");
        assert!(rate_lower_bound > 0.05 && rate_lower_bound <= observed_rate);
        assert!(samples >= 10);
        // Quarantined through the supervise path, with the stochastic
        // evidence recorded, and the honest peer untouched.
        assert_eq!(rt.component_state("sneak"), Some(ComponentState::Disabled));
        assert!(rt.drcr().is_quarantined("sneak"));
        let reason = rt.drcr().quarantine_reason("sneak").unwrap().to_string();
        assert!(reason.contains("stochastic contract violation"), "{reason}");
        assert!(rt
            .drcr()
            .events_for("sneak")
            .any(|e| matches!(e.event, DrcrEvent::StochasticViolation { .. })));
        assert_eq!(rt.component_state("ok"), Some(ComponentState::Active));
        // One conviction, not one per poll.
        let convictions = mon
            .outcomes()
            .iter()
            .filter(|o| matches!(o, ContractOutcome::Violation { .. }))
            .count();
        assert_eq!(convictions, 1);
    }

    #[test]
    fn monitoring_and_refinement_replay_byte_identically() {
        let run = || {
            let mut rt = runtime();
            rt.install_component("demo.hog", steady("hog", 0.60, 2, 1200))
                .unwrap();
            let plan = std::rc::Rc::new(FaultPlan::lying(0xBEEF, 10_000, (1_200_000, 2_200_000)));
            let log = InjectionLog::shared();
            let d = ComponentDescriptor::builder("sneak")
                .periodic(100, 0, 3)
                .cpu_usage(0.04)
                .build()
                .unwrap();
            let provider = ComponentProvider::new(d, {
                let (plan, log) = (plan.clone(), log.clone());
                move || {
                    FaultInjector::wrap(
                        plan.clone(),
                        log.clone(),
                        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                            io.compute(SimDuration::from_micros(50));
                        })),
                    )
                }
            });
            rt.install_component("demo.sneak", provider).unwrap();
            let mut mon = StochasticMonitor::new(fast_config());
            for _ in 0..15 {
                rt.advance(SimDuration::from_millis(100));
                mon.poll(&mut rt).unwrap();
            }
            let events: Vec<String> = rt
                .drcr()
                .events()
                .iter()
                .map(|e| format!("{} {}", e.time, e.event))
                .collect();
            (events, mon.outcomes().to_vec())
        };
        let (events_a, outcomes_a) = run();
        let (events_b, outcomes_b) = run();
        assert_eq!(events_a, events_b, "event streams diverged across runs");
        assert_eq!(outcomes_a, outcomes_b);
        assert!(
            outcomes_a
                .iter()
                .any(|o| matches!(o, ContractOutcome::Refined { .. })),
            "scenario should exercise refinement"
        );
        assert!(
            outcomes_a
                .iter()
                .any(|o| matches!(o, ContractOutcome::Violation { .. })),
            "scenario should exercise conviction"
        );
    }
}
