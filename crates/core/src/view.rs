//! The global system view the DRCR maintains and exposes to resolvers.
//!
//! The paper's central argument (§2.2) is that real-time contracts can only
//! be preserved under dynamicity if a single authority holds "a complete and
//! accurate global view of current system context". [`SystemView`] is that
//! snapshot: every registered component's declared contract and current
//! lifecycle state, plus per-CPU admission totals. Resolving services reason
//! over this view and nothing else, which keeps them pure and composable.

use crate::lifecycle::ComponentState;
use crate::model::TaskSpec;

/// Declared contract + current state of one component, as resolvers see it.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentInfo {
    /// Component name.
    pub name: String,
    /// Current lifecycle state.
    pub state: ComponentState,
    /// CPU the task is pinned to.
    pub cpu: u32,
    /// Claimed CPU fraction.
    pub cpu_usage: f64,
    /// Task priority (lower is more urgent).
    pub priority: u8,
    /// Task period in nanoseconds, for periodic components.
    pub period_ns: Option<u64>,
}

impl ComponentInfo {
    /// Builds the info record from a descriptor's task spec.
    pub fn from_contract(
        name: &str,
        state: ComponentState,
        task: &TaskSpec,
        cpu_usage: f64,
    ) -> Self {
        ComponentInfo {
            name: name.to_string(),
            state,
            cpu: task.cpu(),
            cpu_usage,
            priority: task.priority().0,
            period_ns: task.period().map(|p| p.as_nanos()),
        }
    }

    /// True for periodic components.
    pub fn is_periodic(&self) -> bool {
        self.period_ns.is_some()
    }
}

/// Snapshot of the whole real-time context at one resolution point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SystemView {
    /// Number of CPUs on the kernel.
    pub cpu_count: u32,
    /// Every registered component (all states, including the candidate
    /// under consideration).
    pub components: Vec<ComponentInfo>,
}

impl SystemView {
    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentInfo> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Components currently holding an admission reservation on `cpu`
    /// (Active or Suspended).
    pub fn admitted_on(&self, cpu: u32) -> impl Iterator<Item = &ComponentInfo> {
        self.components
            .iter()
            .filter(move |c| c.cpu == cpu && c.state.holds_admission())
    }

    /// Total claimed CPU fraction reserved on `cpu`.
    pub fn utilization(&self, cpu: u32) -> f64 {
        self.admitted_on(cpu).map(|c| c.cpu_usage).sum()
    }

    /// Number of admitted periodic components on `cpu`.
    pub fn periodic_count(&self, cpu: u32) -> usize {
        self.admitted_on(cpu).filter(|c| c.is_periodic()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtos::task::Priority;

    fn info(name: &str, state: ComponentState, cpu: u32, usage: f64) -> ComponentInfo {
        ComponentInfo {
            name: name.into(),
            state,
            cpu,
            cpu_usage: usage,
            priority: 2,
            period_ns: Some(1_000_000),
        }
    }

    #[test]
    fn from_contract_extracts_task_fields() {
        let spec = TaskSpec::Periodic {
            frequency_hz: 1000,
            cpu: 1,
            priority: Priority(3),
        };
        let i = ComponentInfo::from_contract("calc", ComponentState::Unsatisfied, &spec, 0.2);
        assert_eq!(i.cpu, 1);
        assert_eq!(i.priority, 3);
        assert_eq!(i.period_ns, Some(1_000_000));
        assert!(i.is_periodic());
        let spec = TaskSpec::Aperiodic {
            cpu: 0,
            priority: Priority(9),
        };
        let i = ComponentInfo::from_contract("evt", ComponentState::Unsatisfied, &spec, 0.1);
        assert!(!i.is_periodic());
    }

    #[test]
    fn utilization_counts_only_admission_holders_on_cpu() {
        let view = SystemView {
            cpu_count: 2,
            components: vec![
                info("a", ComponentState::Active, 0, 0.3),
                info("b", ComponentState::Suspended, 0, 0.2),
                info("c", ComponentState::Unsatisfied, 0, 0.4),
                info("d", ComponentState::Active, 1, 0.5),
            ],
        };
        assert!((view.utilization(0) - 0.5).abs() < 1e-9);
        assert!((view.utilization(1) - 0.5).abs() < 1e-9);
        assert_eq!(view.periodic_count(0), 2);
        assert_eq!(view.admitted_on(0).count(), 2);
        assert!(view.component("c").is_some());
        assert!(view.component("zz").is_none());
    }
}
