//! The global system view the DRCR maintains and exposes to resolvers.
//!
//! The paper's central argument (§2.2) is that real-time contracts can only
//! be preserved under dynamicity if a single authority holds "a complete and
//! accurate global view of current system context". [`SystemView`] is that
//! snapshot: every registered component's declared contract and current
//! lifecycle state, plus per-CPU admission totals. Resolving services reason
//! over this view and nothing else, which keeps them pure and composable.

use crate::lifecycle::ComponentState;
use crate::model::TaskSpec;
use std::cell::OnceCell;
use std::rc::Rc;

/// Declared contract + current state of one component, as resolvers see it.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentInfo {
    /// Component name (interned; cheap to clone between snapshots).
    pub name: Rc<str>,
    /// Current lifecycle state.
    pub state: ComponentState,
    /// CPU the task is pinned to.
    pub cpu: u32,
    /// Claimed CPU fraction.
    pub cpu_usage: f64,
    /// Task priority (lower is more urgent).
    pub priority: u8,
    /// Task period in nanoseconds, for periodic components.
    pub period_ns: Option<u64>,
}

impl ComponentInfo {
    /// Builds the info record from a descriptor's task spec.
    pub fn from_contract(
        name: &str,
        state: ComponentState,
        task: &TaskSpec,
        cpu_usage: f64,
    ) -> Self {
        Self::from_contract_interned(Rc::from(name), state, task, cpu_usage)
    }

    /// Like [`ComponentInfo::from_contract`] but reusing an already-interned
    /// name, so snapshot rebuilds allocate nothing per component.
    pub fn from_contract_interned(
        name: Rc<str>,
        state: ComponentState,
        task: &TaskSpec,
        cpu_usage: f64,
    ) -> Self {
        ComponentInfo {
            name,
            state,
            cpu: task.cpu(),
            cpu_usage,
            priority: task.priority().0,
            period_ns: task.period().map(|p| p.as_nanos()),
        }
    }

    /// True for periodic components.
    pub fn is_periodic(&self) -> bool {
        self.period_ns.is_some()
    }
}

/// Per-CPU admission totals derived from the component list, computed once
/// per snapshot on first use.
#[derive(Debug, Clone, Default)]
struct CpuTotals {
    utilization: f64,
    periodic: usize,
}

/// Snapshot of the whole real-time context at one resolution point.
///
/// Per-CPU aggregates ([`SystemView::utilization`],
/// [`SystemView::periodic_count`]) are computed lazily on first query and
/// cached until the next invalidating mutation, so admission checks that
/// probe the same CPU repeatedly pay the component walk once. The DRCR
/// maintains its view incrementally: lifecycle flips go through
/// [`SystemView::set_state_at`], which drops the aggregate caches only when
/// the admission-holding status actually changes; the recompute re-runs the
/// same list-order scan, so cached totals stay bit-identical to a fresh
/// build. Structural changes (component registration/removal) still rebuild
/// the snapshot wholesale.
#[derive(Debug, Clone, Default)]
pub struct SystemView {
    /// Number of CPUs on the kernel.
    pub cpu_count: u32,
    /// Every registered component (all states, including the candidate
    /// under consideration).
    pub components: Vec<ComponentInfo>,
    totals: OnceCell<Vec<CpuTotals>>,
    admitted_index: OnceCell<Vec<Vec<usize>>>,
}

impl PartialEq for SystemView {
    fn eq(&self, other: &Self) -> bool {
        self.cpu_count == other.cpu_count && self.components == other.components
    }
}

impl SystemView {
    /// Builds a snapshot from a component list.
    pub fn new(cpu_count: u32, components: Vec<ComponentInfo>) -> Self {
        SystemView {
            cpu_count,
            components,
            totals: OnceCell::new(),
            admitted_index: OnceCell::new(),
        }
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentInfo> {
        self.components.iter().find(|c| &*c.name == name)
    }

    /// In-place lifecycle update for incremental view maintenance.
    ///
    /// Drops the per-CPU aggregate caches only when the admission-holding
    /// status flips (activate/deactivate); suspend↔resume and installed-side
    /// churn keep them. The next aggregate query re-runs the list-order
    /// scan, so the recomputed totals are bit-identical to a fresh build.
    pub(crate) fn set_state_at(&mut self, idx: usize, state: ComponentState) {
        let old = self.components[idx].state;
        if old == state {
            return;
        }
        self.components[idx].state = state;
        if old.holds_admission() != state.holds_admission() {
            self.totals.take();
            self.admitted_index.take();
        }
    }

    /// Replaces one component's whole info record (contract re-write on a
    /// mode switch). Drops the aggregate caches when either the old or the
    /// new record holds admission.
    pub(crate) fn replace_at(&mut self, idx: usize, info: ComponentInfo) {
        let invalidate =
            self.components[idx].state.holds_admission() || info.state.holds_admission();
        self.components[idx] = info;
        if invalidate {
            self.totals.take();
            self.admitted_index.take();
        }
    }

    /// Components currently holding an admission reservation on `cpu`
    /// (Active or Suspended).
    pub fn admitted_on(&self, cpu: u32) -> impl Iterator<Item = &ComponentInfo> {
        self.components
            .iter()
            .filter(move |c| c.cpu == cpu && c.state.holds_admission())
    }

    /// One pass over the component list, accumulating per-CPU admission
    /// totals in list order (so float summation order matches a direct
    /// filtered sum over the same list).
    fn totals(&self) -> &[CpuTotals] {
        self.totals.get_or_init(|| {
            let mut width = self.cpu_count as usize;
            for c in &self.components {
                width = width.max(c.cpu as usize + 1);
            }
            // Seed each accumulator with -0.0, the identity `Sum for f64`
            // uses, so the cached total is bit-identical to a direct
            // `admitted_on(cpu).map(..).sum()` — including the empty case,
            // which sums to -0.0.
            let mut totals = vec![
                CpuTotals {
                    utilization: -0.0,
                    periodic: 0,
                };
                width
            ];
            for c in &self.components {
                if !c.state.holds_admission() {
                    continue;
                }
                let slot = &mut totals[c.cpu as usize];
                slot.utilization += c.cpu_usage;
                if c.is_periodic() {
                    slot.periodic += 1;
                }
            }
            totals
        })
    }

    /// Per-CPU index of admission holders sorted by priority (stable: list
    /// order within a priority class), computed once per snapshot on first
    /// use. Response-time analysis walks a CPU's admitted task set once per
    /// admission check; caching the sorted index here makes that walk share
    /// the snapshot-lifetime invalidation discipline of the utilization
    /// totals — a stale view can never feed the recurrence.
    fn admitted_index(&self) -> &[Vec<usize>] {
        self.admitted_index.get_or_init(|| {
            let mut width = self.cpu_count as usize;
            for c in &self.components {
                width = width.max(c.cpu as usize + 1);
            }
            let mut index = vec![Vec::new(); width];
            for (i, c) in self.components.iter().enumerate() {
                if c.state.holds_admission() {
                    index[c.cpu as usize].push(i);
                }
            }
            for slots in &mut index {
                slots.sort_by_key(|&i| self.components[i].priority);
            }
            index
        })
    }

    /// Components holding an admission reservation on `cpu`, most urgent
    /// (lowest priority value) first; ties keep component-list order.
    pub fn admitted_sorted(&self, cpu: u32) -> impl Iterator<Item = &ComponentInfo> {
        self.admitted_index()
            .get(cpu as usize)
            .map(|slots| slots.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.components[i])
    }

    /// Total claimed CPU fraction reserved on `cpu`.
    pub fn utilization(&self, cpu: u32) -> f64 {
        self.totals()
            .get(cpu as usize)
            .map_or(-0.0, |t| t.utilization)
    }

    /// Number of admitted periodic components on `cpu`.
    pub fn periodic_count(&self, cpu: u32) -> usize {
        self.totals().get(cpu as usize).map_or(0, |t| t.periodic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtos::task::Priority;

    fn info(name: &str, state: ComponentState, cpu: u32, usage: f64) -> ComponentInfo {
        ComponentInfo {
            name: name.into(),
            state,
            cpu,
            cpu_usage: usage,
            priority: 2,
            period_ns: Some(1_000_000),
        }
    }

    #[test]
    fn from_contract_extracts_task_fields() {
        let spec = TaskSpec::Periodic {
            frequency_hz: 1000,
            cpu: 1,
            priority: Priority(3),
        };
        let i = ComponentInfo::from_contract("calc", ComponentState::Unsatisfied, &spec, 0.2);
        assert_eq!(i.cpu, 1);
        assert_eq!(i.priority, 3);
        assert_eq!(i.period_ns, Some(1_000_000));
        assert!(i.is_periodic());
        let spec = TaskSpec::Aperiodic {
            cpu: 0,
            priority: Priority(9),
        };
        let i = ComponentInfo::from_contract("evt", ComponentState::Unsatisfied, &spec, 0.1);
        assert!(!i.is_periodic());
    }

    #[test]
    fn utilization_counts_only_admission_holders_on_cpu() {
        let view = SystemView::new(
            2,
            vec![
                info("a", ComponentState::Active, 0, 0.3),
                info("b", ComponentState::Suspended, 0, 0.2),
                info("c", ComponentState::Unsatisfied, 0, 0.4),
                info("d", ComponentState::Active, 1, 0.5),
            ],
        );
        assert!((view.utilization(0) - 0.5).abs() < 1e-9);
        assert!((view.utilization(1) - 0.5).abs() < 1e-9);
        assert_eq!(view.periodic_count(0), 2);
        assert_eq!(view.admitted_on(0).count(), 2);
        assert!(view.component("c").is_some());
        assert!(view.component("zz").is_none());
    }

    #[test]
    fn cached_totals_match_direct_sums() {
        let view = SystemView::new(
            3,
            vec![
                info("a", ComponentState::Active, 0, 0.125),
                info("b", ComponentState::Active, 0, 0.25),
                info("c", ComponentState::Suspended, 2, 0.0625),
                info("d", ComponentState::Unsatisfied, 2, 0.5),
            ],
        );
        for cpu in 0..3 {
            let direct: f64 = view.admitted_on(cpu).map(|c| c.cpu_usage).sum();
            // Bit-identical, not just approximately equal: both sums add
            // the same values in the same (list) order.
            assert_eq!(view.utilization(cpu).to_bits(), direct.to_bits());
            assert_eq!(
                view.periodic_count(cpu),
                view.admitted_on(cpu).filter(|c| c.is_periodic()).count()
            );
        }
        // CPUs beyond the table read as empty.
        assert_eq!(view.utilization(7), 0.0);
        assert_eq!(view.periodic_count(7), 0);
    }

    #[test]
    fn admitted_sorted_orders_by_priority_stable() {
        let mk = |name: &str, state, cpu, prio| ComponentInfo {
            name: name.into(),
            state,
            cpu,
            cpu_usage: 0.1,
            priority: prio,
            period_ns: Some(1_000_000),
        };
        let view = SystemView::new(
            2,
            vec![
                mk("late-urgent", ComponentState::Active, 0, 1),
                mk("slack-a", ComponentState::Active, 0, 5),
                mk("ghost", ComponentState::Unsatisfied, 0, 0),
                mk("slack-b", ComponentState::Suspended, 0, 5),
                mk("other-cpu", ComponentState::Active, 1, 2),
            ],
        );
        let names: Vec<&str> = view.admitted_sorted(0).map(|c| &*c.name).collect();
        // Unsatisfied `ghost` excluded; equal-priority pair keeps list order.
        assert_eq!(names, vec!["late-urgent", "slack-a", "slack-b"]);
        let names: Vec<&str> = view.admitted_sorted(1).map(|c| &*c.name).collect();
        assert_eq!(names, vec!["other-cpu"]);
        assert_eq!(view.admitted_sorted(7).count(), 0);
    }

    #[test]
    fn in_place_flip_keeps_totals_bit_identical_to_fresh_build() {
        let mut view = SystemView::new(
            2,
            vec![
                info("a", ComponentState::Active, 0, 0.125),
                info("b", ComponentState::Unsatisfied, 0, 0.25),
                info("c", ComponentState::Active, 1, 0.0625),
            ],
        );
        // Prime the caches, then flip `b` active in place.
        assert!((view.utilization(0) - 0.125).abs() < 1e-9);
        assert_eq!(view.admitted_sorted(0).count(), 1);
        view.set_state_at(1, ComponentState::Active);
        let fresh = SystemView::new(2, view.components.clone());
        for cpu in 0..2 {
            assert_eq!(
                view.utilization(cpu).to_bits(),
                fresh.utilization(cpu).to_bits()
            );
            assert_eq!(view.periodic_count(cpu), fresh.periodic_count(cpu));
            let a: Vec<&str> = view.admitted_sorted(cpu).map(|c| &*c.name).collect();
            let b: Vec<&str> = fresh.admitted_sorted(cpu).map(|c| &*c.name).collect();
            assert_eq!(a, b);
        }
        // Suspend keeps admission: the caches survive untouched and stay
        // correct (Suspended still holds admission).
        view.set_state_at(1, ComponentState::Suspended);
        assert_eq!(
            view.utilization(0).to_bits(),
            fresh.utilization(0).to_bits()
        );
        assert_eq!(view.admitted_sorted(0).count(), 2);
    }

    #[test]
    fn clone_and_eq_ignore_the_totals_cache() {
        let a = SystemView::new(1, vec![info("a", ComponentState::Active, 0, 0.5)]);
        let b = a.clone();
        // Prime only one side's cache; equality is still value equality.
        assert!((a.utilization(0) - 0.5).abs() < 1e-9);
        assert_eq!(a, b);
        assert!((b.utilization(0) - 0.5).abs() < 1e-9);
    }
}
