//! Federated DRCR: multi-node sharding with failure detection, cross-node
//! failover, and partition-tolerant degradation.
//!
//! A [`Federation`] runs N simulated nodes, each a full [`DrtRuntime`]
//! (its own kernel plus DRCR shard), joined by typed bridge channels to a
//! **hub** coordinator that holds the synced global view used for
//! placement. The paper's executive manages one box; this module takes
//! its "adaptation managers participate via the service registry" idea to
//! a fleet of boxes, and layers on the machinery that makes sharding
//! survivable:
//!
//! * **Lockstep virtual time** — every node kernel advances to a common
//!   barrier per federation tick through [`rtos::exec::Lockstep`], the
//!   multi-machine counterpart of the parallel executor's epoch barrier.
//!   All federation decisions key on the tick, so a run replays
//!   byte-identically from its seed.
//! * **Heartbeat failure detection** — each live node heartbeats the hub
//!   every tick with its active-component roster. The hub marks a node
//!   *Suspected* after [`FederationConfig::suspect_after`] silent ticks
//!   and *Failed* after [`FederationConfig::fail_after`]; failure
//!   displaces the node's last-reported roster.
//! * **Cross-node migration on failure** — displaced components are
//!   re-placed on the least-utilized surviving nodes and installed there
//!   as a *wave*, so the target shard admits them through
//!   [`Resolver::admit_batch`](crate::resolve::Resolver::admit_batch)
//!   (one response-time fixed point per CPU, all-or-nothing with
//!   sequential fallback). Rejected placements go to a failover
//!   [`Supervisor`] reusing the `drcom::supervise` restart policies:
//!   Backoff grants delayed retries on virtual time, exhaustion (or a
//!   flap window) quarantines the component with typed evidence.
//! * **At-least-once bridge delivery** — inter-node messages ride
//!   per-link sequence numbers with receiver dedup, acks, and bounded
//!   retry-with-backoff. Seeded drop/delay and partitions come from a
//!   [`NodeFaultPlan`] extending `drcom::faults` one layer up.
//! * **Graceful degradation** — a node cut off from the hub for
//!   [`FederationConfig::degrade_after`] ticks falls back to *local-only
//!   admission*: its fleets keep running and local arrivals are admitted
//!   by its own resolver instead of halting. On heal the hub adopts
//!   locally-admitted components and retires copies it re-placed
//!   elsewhere meanwhile (hub wins), so the global view reconverges.
//!
//! Everything is observable: federation decisions are
//! [`FedEvent`]s keyed on the tick, tallied into `fed.*` metrics.

use crate::descriptor::ComponentDescriptor;
use crate::drcr::{ComponentProvider, ResolutionStrategy};
use crate::error::DrcrError;
use crate::faults::{NodeFaultKind, NodeFaultPlan};
use crate::hybrid::RtLogic;
use crate::lifecycle::ComponentState;
use crate::obs::{DrcrEvent, FedEndpoint, FedEvent, MetricsRegistry, MetricsReport};
use crate::runtime::DrtRuntime;
use crate::supervise::{FaultDecision, SupervisionConfig, Supervisor};
use osgi::event::BundleId;
use rtos::exec::Lockstep;
use rtos::kernel::{KernelConfig, SchedCounters};
use rtos::latency::TimerJitterModel;
use rtos::rng::SimRng;
use rtos::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Longest resend backoff, in ticks.
const MAX_RESEND_BACKOFF_TICKS: u64 = 16;

/// Topology and robustness thresholds of a federation.
#[derive(Clone)]
pub struct FederationConfig {
    /// Number of simulated nodes.
    pub nodes: u32,
    /// CPUs per node kernel.
    pub cpus_per_node: u32,
    /// Master seed; node kernels and the bridge fabric derive from it.
    pub seed: u64,
    /// Virtual-time span of one federation tick (heartbeat + barrier
    /// interval).
    pub tick: SimDuration,
    /// Silent ticks before the detector marks a node Suspected.
    pub suspect_after: u32,
    /// Silent ticks before the detector marks a node Failed and displaces
    /// its components.
    pub fail_after: u32,
    /// Ticks without hub contact before a node degrades to local-only
    /// admission.
    pub degrade_after: u32,
    /// Restart policy for failover placement retries (Backoff/quarantine
    /// semantics identical to component supervision).
    pub failover: SupervisionConfig,
    /// Transmission budget per bridge message before the sender gives up.
    pub max_send_attempts: u32,
    /// Ticks before the first resend of an unacked message (doubles per
    /// attempt, capped).
    pub resend_after: u64,
}

impl FederationConfig {
    /// A config with conventional thresholds: 10 ms ticks, suspect after
    /// 3, fail after 5, degrade after 5, failover backoff of 2 ticks
    /// doubling to 8 with a 3-retry budget.
    pub fn new(nodes: u32, cpus_per_node: u32, seed: u64) -> Self {
        let tick = SimDuration::from_millis(10);
        FederationConfig {
            nodes,
            cpus_per_node,
            seed,
            tick,
            suspect_after: 3,
            fail_after: 5,
            degrade_after: 5,
            failover: SupervisionConfig::backoff(
                SimDuration::from_nanos(tick.as_nanos() * 2),
                2,
                SimDuration::from_nanos(tick.as_nanos() * 8),
                3,
            ),
            max_send_attempts: 5,
            resend_after: 2,
        }
    }
}

// ---------------------------------------------------------------------
// Bridge network
// ---------------------------------------------------------------------

/// A typed bridge message between a node and the hub.
#[derive(Debug, Clone, PartialEq)]
enum Payload {
    /// node -> hub, every tick: liveness plus the active roster.
    Heartbeat { node: u32, roster: Vec<String> },
    /// hub -> node: install this failover wave (batched admission).
    Place { components: Vec<String>, epoch: u64 },
    /// node -> hub: per-component verdicts for one placement wave.
    PlaceAck {
        node: u32,
        epoch: u64,
        admitted: Vec<String>,
        rejected: Vec<(String, String)>,
    },
    /// hub -> node: uninstall these components (stale copies).
    Retire { components: Vec<String> },
    /// Link-level cumulative ack (fire-and-forget).
    Ack { seq: u64 },
}

struct InFlight {
    payload: Payload,
    attempts: u32,
    resend_at: u64,
}

#[derive(Default)]
struct Link {
    next_seq: u64,
    inflight: BTreeMap<u64, InFlight>,
    /// Receiver-side dedup for this directed link.
    seen: BTreeSet<u64>,
}

struct Delivery {
    from: FedEndpoint,
    to: FedEndpoint,
    seq: u64,
    payload: Payload,
}

/// The seeded, lossy, at-least-once message fabric between endpoints.
struct BridgeNet {
    rng: SimRng,
    drop: f64,
    delay: f64,
    delay_ticks: (u64, u64),
    max_attempts: u32,
    resend_after: u64,
    links: BTreeMap<(FedEndpoint, FedEndpoint), Link>,
    due: BTreeMap<u64, Vec<Delivery>>,
}

impl BridgeNet {
    fn new(plan: &NodeFaultPlan, config: &FederationConfig) -> Self {
        let rates = plan.rates().clone();
        BridgeNet {
            rng: SimRng::from_seed(plan.seed() ^ 0xB41D_6E00),
            drop: rates.drop,
            delay: rates.delay,
            delay_ticks: rates.delay_ticks,
            max_attempts: config.max_send_attempts.max(1),
            resend_after: config.resend_after.max(1),
            links: BTreeMap::new(),
            due: BTreeMap::new(),
        }
    }

    /// Sends a payload; `reliable` messages are tracked for resend until
    /// acked or out of budget.
    fn send(
        &mut self,
        from: FedEndpoint,
        to: FedEndpoint,
        payload: Payload,
        reliable: bool,
        tick: u64,
        sink: &mut Sink<'_>,
    ) {
        let link = self.links.entry((from, to)).or_default();
        let seq = link.next_seq;
        link.next_seq += 1;
        if reliable {
            link.inflight.insert(
                seq,
                InFlight {
                    payload: payload.clone(),
                    attempts: 1,
                    resend_at: tick + self.resend_after,
                },
            );
        }
        self.transmit(from, to, seq, payload, tick, sink);
    }

    /// One physical transmission attempt: may be dropped or delayed.
    fn transmit(
        &mut self,
        from: FedEndpoint,
        to: FedEndpoint,
        seq: u64,
        payload: Payload,
        tick: u64,
        sink: &mut Sink<'_>,
    ) {
        if self.drop > 0.0 && self.rng.chance(self.drop) {
            sink.event(tick, FedEvent::MessageDropped { from, to, seq });
            sink.metrics.count("fed.messages.dropped", 1);
            return;
        }
        let mut arrive = tick + 1;
        if self.delay > 0.0 && self.rng.chance(self.delay) {
            arrive += self
                .rng
                .uniform_u64(self.delay_ticks.0.max(1), self.delay_ticks.1.max(2));
        }
        self.due.entry(arrive).or_default().push(Delivery {
            from,
            to,
            seq,
            payload,
        });
    }

    /// Messages arriving this tick, in deterministic order.
    fn due_now(&mut self, tick: u64) -> Vec<Delivery> {
        self.due.remove(&tick).unwrap_or_default()
    }

    /// Retransmits unacked messages whose resend deadline passed; expired
    /// budgets surface as [`FedEvent::MessageExpired`].
    fn retry_due(&mut self, tick: u64, sink: &mut Sink<'_>) {
        let mut resend: Vec<(FedEndpoint, FedEndpoint, u64, Payload, u32)> = Vec::new();
        for ((from, to), link) in &mut self.links {
            let mut expired = Vec::new();
            for (&seq, inflight) in &mut link.inflight {
                if inflight.resend_at > tick {
                    continue;
                }
                if inflight.attempts >= self.max_attempts {
                    expired.push(seq);
                    continue;
                }
                inflight.attempts += 1;
                // Exponential backoff between retransmissions, capped.
                let backoff = (self.resend_after << (inflight.attempts - 1).min(8))
                    .min(MAX_RESEND_BACKOFF_TICKS);
                inflight.resend_at = tick + backoff;
                resend.push((*from, *to, seq, inflight.payload.clone(), inflight.attempts));
            }
            for seq in expired {
                link.inflight.remove(&seq);
                sink.event(
                    tick,
                    FedEvent::MessageExpired {
                        from: *from,
                        to: *to,
                        seq,
                    },
                );
                sink.metrics.count("fed.messages.expired", 1);
            }
        }
        for (from, to, seq, payload, attempt) in resend {
            sink.event(
                tick,
                FedEvent::MessageRetried {
                    from,
                    to,
                    seq,
                    attempt,
                },
            );
            sink.metrics.count("fed.messages.retried", 1);
            self.transmit(from, to, seq, payload, tick, sink);
        }
    }

    /// Marks `seq` on the directed link as delivered at the receiver.
    /// Returns false for a duplicate (already seen).
    fn mark_seen(&mut self, from: FedEndpoint, to: FedEndpoint, seq: u64) -> bool {
        self.links.entry((from, to)).or_default().seen.insert(seq)
    }

    /// Handles an incoming link-level ack: the acked message stops being
    /// retransmitted.
    fn acked(&mut self, owner: FedEndpoint, peer: FedEndpoint, seq: u64) {
        if let Some(link) = self.links.get_mut(&(owner, peer)) {
            link.inflight.remove(&seq);
        }
    }
}

/// Event/metric sink threaded through the phases of one tick (separate
/// from the federation itself to keep field borrows disjoint).
struct Sink<'a> {
    events: &'a mut Vec<(u64, FedEvent)>,
    metrics: &'a mut MetricsRegistry,
}

impl Sink<'_> {
    fn event(&mut self, tick: u64, event: FedEvent) {
        self.events.push((tick, event));
    }
}

// ---------------------------------------------------------------------
// Hub (global view + placement)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Alive,
    Suspected,
    Failed,
}

struct NodeView {
    last_heard: u64,
    health: Health,
    roster: Vec<String>,
}

struct PendingPlacement {
    target: u32,
    epoch: u64,
}

struct Hub {
    views: BTreeMap<u32, NodeView>,
    /// Authoritative component -> node placement.
    placement: BTreeMap<String, u32>,
    epoch: u64,
    pending: BTreeMap<String, PendingPlacement>,
    retry_at: BTreeMap<u64, Vec<String>>,
    displaced_from: BTreeMap<String, u32>,
    admitted_failovers: BTreeSet<String>,
    quarantined: BTreeMap<String, String>,
    supervisor: Supervisor,
}

impl Hub {
    fn new(config: &FederationConfig) -> Self {
        let mut supervisor = Supervisor::new();
        supervisor.set_default(config.failover);
        Hub {
            views: (0..config.nodes)
                .map(|id| {
                    (
                        id,
                        NodeView {
                            last_heard: 0,
                            health: Health::Alive,
                            roster: Vec::new(),
                        },
                    )
                })
                .collect(),
            placement: BTreeMap::new(),
            epoch: 0,
            pending: BTreeMap::new(),
            retry_at: BTreeMap::new(),
            displaced_from: BTreeMap::new(),
            admitted_failovers: BTreeSet::new(),
            quarantined: BTreeMap::new(),
            supervisor,
        }
    }

    /// Estimated reserved fraction per CPU on a node, from the hub's
    /// placement map plus in-flight placements (so one failover wave does
    /// not overcommit a target before acks return).
    fn estimated_load(&self, node: u32, catalog: &Catalog, cpus: u32) -> f64 {
        let mut total = 0.0;
        for (component, &on) in &self.placement {
            if on == node {
                if let Some(entry) = catalog.get(component) {
                    total += entry.descriptor.cpu_usage.fraction();
                }
            }
        }
        for (component, pending) in &self.pending {
            if pending.target == node {
                if let Some(entry) = catalog.get(component) {
                    total += entry.descriptor.cpu_usage.fraction();
                }
            }
        }
        total / cpus.max(1) as f64
    }
}

// ---------------------------------------------------------------------
// Nodes
// ---------------------------------------------------------------------

/// Shared factory producing a fresh [`RtLogic`] per (re)install.
pub type LogicFactory = Rc<dyn Fn() -> Box<dyn RtLogic>>;

struct CatalogEntry {
    descriptor: ComponentDescriptor,
    factory: LogicFactory,
}

type Catalog = BTreeMap<String, CatalogEntry>;

struct NodeSlot {
    id: u32,
    rt: DrtRuntime,
    lockstep_id: usize,
    alive: bool,
    degraded: bool,
    last_hub_contact: u64,
    bundles: BTreeMap<String, BundleId>,
}

// ---------------------------------------------------------------------
// Federation
// ---------------------------------------------------------------------

/// Failover bookkeeping totals; see [`Federation::accounting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverAccounting {
    /// Components displaced by node failures so far.
    pub displaced: usize,
    /// Displaced components re-admitted on a surviving node.
    pub admitted: usize,
    /// Displaced components quarantined with typed evidence.
    pub quarantined: usize,
    /// Displaced components still in flight (pending wave or retry).
    pub pending: usize,
}

/// N simulated nodes under one hub-synced global view. See the
/// [module docs](self).
pub struct Federation {
    config: FederationConfig,
    plan: NodeFaultPlan,
    catalog: Catalog,
    nodes: Vec<NodeSlot>,
    hub: Hub,
    net: BridgeNet,
    lockstep: Lockstep,
    tick: u64,
    partition: Option<BTreeSet<u32>>,
    events: Vec<(u64, FedEvent)>,
    metrics: MetricsRegistry,
}

impl Federation {
    /// Builds the federation: one kernel + DRCR shard per node, all on
    /// the response-time resolution strategy with batched admission (so
    /// failover waves go through `admit_batch`).
    pub fn new(config: FederationConfig, plan: NodeFaultPlan) -> Self {
        let mut lockstep = Lockstep::new();
        let nodes = (0..config.nodes)
            .map(|id| {
                let mut rt = DrtRuntime::new(
                    KernelConfig::new(config.seed.wrapping_add(id as u64).wrapping_mul(0x9E37))
                        .with_cpus(config.cpus_per_node)
                        .with_timer(TimerJitterModel::ideal()),
                );
                rt.set_resolution_strategy(ResolutionStrategy::ResponseTime);
                rt.set_batched_admission(true);
                NodeSlot {
                    id,
                    rt,
                    lockstep_id: lockstep.register(&format!("node{id}")),
                    alive: true,
                    degraded: false,
                    last_hub_contact: 0,
                    bundles: BTreeMap::new(),
                }
            })
            .collect();
        let net = BridgeNet::new(&plan, &config);
        let hub = Hub::new(&config);
        Federation {
            config,
            plan,
            catalog: BTreeMap::new(),
            nodes,
            hub,
            net,
            lockstep,
            tick: 0,
            partition: None,
            events: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Installs one component on a node. Routed through the hub's global
    /// view when the node is connected; admitted by the node's *local*
    /// resolver (and flagged as such) when it is degraded.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] for duplicate names, dead nodes, or install
    /// failures.
    pub fn install(
        &mut self,
        node: u32,
        descriptor: ComponentDescriptor,
        factory: impl Fn() -> Box<dyn RtLogic> + 'static,
    ) -> Result<bool, DrcrError> {
        self.install_wave(node, vec![(descriptor, Rc::new(factory) as Rc<_>)])
            .map(|admitted| admitted == 1)
    }

    /// Installs a wave of components on one node in a single resolve
    /// round (one batched admission pass). Returns how many were
    /// admitted.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] for duplicate names, dead nodes, or install
    /// failures.
    pub fn install_wave(
        &mut self,
        node: u32,
        wave: Vec<(ComponentDescriptor, LogicFactory)>,
    ) -> Result<usize, DrcrError> {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            return Err(DrcrError::Kernel(format!("no node {node}")));
        }
        if !self.nodes[idx].alive {
            return Err(DrcrError::Kernel(format!("node {node} is dead")));
        }
        for (descriptor, _) in &wave {
            if self.catalog.contains_key(descriptor.name.as_str()) {
                return Err(DrcrError::DuplicateComponent(descriptor.name.to_string()));
            }
        }
        let names: Vec<String> = wave
            .iter()
            .map(|(d, _)| d.name.as_str().to_string())
            .collect();
        for (descriptor, factory) in wave {
            self.catalog.insert(
                descriptor.name.as_str().to_string(),
                CatalogEntry {
                    descriptor,
                    factory,
                },
            );
        }
        let slot = &mut self.nodes[idx];
        let providers: Vec<(String, ComponentProvider)> = names
            .iter()
            .map(|name| {
                let entry = self.catalog.get(name).expect("just inserted");
                let factory = entry.factory.clone();
                (
                    format!("fed.{name}"),
                    ComponentProvider::new(entry.descriptor.clone(), move || factory()),
                )
            })
            .collect();
        let bundles = slot
            .rt
            .install_components(providers)
            .map_err(|e| DrcrError::Kernel(e.to_string()))?;
        for (name, bundle) in names.iter().zip(bundles) {
            slot.bundles.insert(name.clone(), bundle);
        }
        let degraded = slot.degraded;
        let mut admitted = 0;
        for name in &names {
            let ok = self.nodes[idx].rt.component_state(name) == Some(ComponentState::Active);
            if ok {
                admitted += 1;
            }
            if degraded {
                // Local-only admission: the hub learns about this
                // component from the roster after heal.
                self.events.push((
                    self.tick,
                    FedEvent::LocalAdmission {
                        node,
                        component: name.clone(),
                        admitted: ok,
                    },
                ));
                self.metrics.count("fed.local_admissions", 1);
            } else if ok {
                self.hub.placement.insert(name.clone(), node);
            }
        }
        Ok(admitted)
    }

    /// Runs `n` federation ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// One federation tick: fault-plan events, a lockstep kernel epoch,
    /// message delivery, retries, heartbeats, failure detection and
    /// failover planning.
    pub fn step(&mut self) {
        let t = self.tick;
        self.apply_plan(t);
        self.advance_kernels();
        self.deliver_messages(t);
        let mut sink = Sink {
            events: &mut self.events,
            metrics: &mut self.metrics,
        };
        self.net.retry_due(t, &mut sink);
        self.send_heartbeats(t);
        self.detect_failures(t);
        self.retry_placements(t);
        self.tick = t + 1;
    }

    fn apply_plan(&mut self, t: u64) {
        for kind in self.plan.events_at(t).to_vec() {
            match kind {
                NodeFaultKind::Crash { node } => {
                    if let Some(slot) = self.nodes.get_mut(node as usize) {
                        if slot.alive {
                            slot.alive = false;
                            self.lockstep.mark_dead(slot.lockstep_id);
                            self.events.push((t, FedEvent::NodeCrashed { node }));
                            self.metrics.count("fed.nodes.crashed", 1);
                        }
                    }
                }
                NodeFaultKind::Partition { isolated } => {
                    let set: BTreeSet<u32> = isolated.iter().copied().collect();
                    self.events
                        .push((t, FedEvent::PartitionStarted { isolated }));
                    self.metrics.count("fed.partitions", 1);
                    self.partition = Some(set);
                }
                NodeFaultKind::Heal => {
                    if self.partition.take().is_some() {
                        self.events.push((t, FedEvent::PartitionHealed));
                    }
                }
            }
        }
    }

    fn advance_kernels(&mut self) {
        self.lockstep.begin_epoch(self.config.tick);
        for slot in &mut self.nodes {
            if !slot.alive {
                continue;
            }
            slot.rt.process();
            self.lockstep
                .run_to_barrier(slot.lockstep_id, &mut slot.rt.kernel_mut())
                .expect("lockstep drift");
            slot.rt.process();
        }
        self.lockstep.finish_epoch().expect("lockstep laggard");
    }

    /// True when the partition (or a dead endpoint) blocks the link.
    fn blocked(&self, from: FedEndpoint, to: FedEndpoint) -> bool {
        let endpoint_down = |e: FedEndpoint| match e {
            FedEndpoint::Hub => false,
            FedEndpoint::Node(id) => !self.nodes.get(id as usize).is_some_and(|s| s.alive),
        };
        if endpoint_down(from) || endpoint_down(to) {
            return true;
        }
        let Some(isolated) = &self.partition else {
            return false;
        };
        let side = |e: FedEndpoint| match e {
            // The hub sits with the majority.
            FedEndpoint::Hub => false,
            FedEndpoint::Node(id) => isolated.contains(&id),
        };
        side(from) != side(to)
    }

    fn deliver_messages(&mut self, t: u64) {
        let deliveries = self.net.due_now(t);
        for delivery in deliveries {
            // Partitions and dead endpoints block at delivery time too: a
            // message sent just before the cut does not tunnel through it.
            if self.blocked(delivery.from, delivery.to) {
                continue;
            }
            let fresh = self.net.mark_seen(delivery.from, delivery.to, delivery.seq);
            // Always (re-)ack data payloads: the original ack may itself
            // have been dropped, and the sender keeps resending until one
            // lands. Acks are fire-and-forget.
            if !matches!(delivery.payload, Payload::Ack { .. }) {
                let mut sink = Sink {
                    events: &mut self.events,
                    metrics: &mut self.metrics,
                };
                self.net.send(
                    delivery.to,
                    delivery.from,
                    Payload::Ack { seq: delivery.seq },
                    false,
                    t,
                    &mut sink,
                );
            }
            if !fresh {
                self.metrics.count("fed.messages.duplicates", 1);
                continue;
            }
            self.metrics.count("fed.messages.delivered", 1);
            match delivery.payload {
                Payload::Ack { seq } => {
                    // `to` owns the link being acked: (to, from).
                    self.net.acked(delivery.to, delivery.from, seq);
                }
                Payload::Heartbeat { node, roster } => {
                    self.hub_heartbeat(t, node, roster);
                }
                Payload::Place { components, epoch } => {
                    if let FedEndpoint::Node(node) = delivery.to {
                        self.node_place(t, node, components, epoch);
                    }
                }
                Payload::PlaceAck {
                    node,
                    epoch,
                    admitted,
                    rejected,
                } => {
                    self.hub_place_ack(t, node, epoch, admitted, rejected);
                }
                Payload::Retire { components } => {
                    if let FedEndpoint::Node(node) = delivery.to {
                        self.node_retire(t, node, components);
                    }
                }
            }
            // Any hub-originated delivery is hub contact for the node.
            if delivery.from == FedEndpoint::Hub {
                if let FedEndpoint::Node(node) = delivery.to {
                    self.note_hub_contact(t, node);
                }
            }
        }
    }

    fn note_hub_contact(&mut self, t: u64, node: u32) {
        if let Some(slot) = self.nodes.get_mut(node as usize) {
            slot.last_hub_contact = t;
            if slot.degraded {
                slot.degraded = false;
                self.events.push((t, FedEvent::NodeRejoined { node }));
                self.metrics.count("fed.nodes.rejoined", 1);
            }
        }
    }

    fn send_heartbeats(&mut self, t: u64) {
        // Roster snapshots first (immutable pass), then sends.
        let mut beats: Vec<(u32, Vec<String>)> = Vec::new();
        for slot in &mut self.nodes {
            if !slot.alive {
                continue;
            }
            // Degradation check rides the heartbeat cadence.
            if !slot.degraded
                && t.saturating_sub(slot.last_hub_contact) >= self.config.degrade_after as u64
            {
                slot.degraded = true;
                let since = (t - slot.last_hub_contact) as u32;
                self.events.push((
                    t,
                    FedEvent::NodeDegraded {
                        node: slot.id,
                        since_ticks: since,
                    },
                ));
                self.metrics.count("fed.nodes.degraded", 1);
            }
            let drcr = slot.rt.drcr();
            let roster: Vec<String> = drcr
                .component_names()
                .into_iter()
                .filter(|name| drcr.state_of(name) == Some(ComponentState::Active))
                .collect();
            drop(drcr);
            beats.push((slot.id, roster));
        }
        for (node, roster) in beats {
            self.metrics.count("fed.heartbeats.sent", 1);
            if self.blocked(FedEndpoint::Node(node), FedEndpoint::Hub) {
                continue;
            }
            let mut sink = Sink {
                events: &mut self.events,
                metrics: &mut self.metrics,
            };
            self.net.send(
                FedEndpoint::Node(node),
                FedEndpoint::Hub,
                Payload::Heartbeat { node, roster },
                false,
                t,
                &mut sink,
            );
        }
    }

    fn hub_heartbeat(&mut self, t: u64, node: u32, roster: Vec<String>) {
        self.metrics.count("fed.heartbeats.received", 1);
        let Some(view) = self.hub.views.get_mut(&node) else {
            return;
        };
        view.last_heard = t;
        let was = view.health;
        view.health = Health::Alive;
        view.roster = roster.clone();
        if was == Health::Failed {
            // A falsely-failed node (partitioned, not dead) came back:
            // reconcile its roster against the authoritative placement.
            self.events.push((t, FedEvent::NodeRejoined { node }));
            self.metrics.count("fed.nodes.rejoined", 1);
            let mut retire = Vec::new();
            for component in &roster {
                match self.hub.placement.get(component) {
                    Some(&on) if on != node => {
                        // The hub re-placed it elsewhere meanwhile: the
                        // hub wins, the stale copy retires.
                        retire.push(component.clone());
                    }
                    Some(_) => {}
                    None => {
                        // Locally admitted while degraded: adopt it.
                        self.hub.placement.insert(component.clone(), node);
                    }
                }
            }
            if !retire.is_empty() {
                let mut sink = Sink {
                    events: &mut self.events,
                    metrics: &mut self.metrics,
                };
                self.net.send(
                    FedEndpoint::Hub,
                    FedEndpoint::Node(node),
                    Payload::Retire { components: retire },
                    true,
                    t,
                    &mut sink,
                );
            }
        } else {
            // Steady state: adopt locally-admitted components (degraded
            // spells shorter than the failure threshold still reconcile).
            for component in &roster {
                self.hub.placement.entry(component.clone()).or_insert(node);
            }
        }
    }

    fn detect_failures(&mut self, t: u64) {
        let mut failed: Vec<u32> = Vec::new();
        for (&node, view) in &mut self.hub.views {
            if view.health == Health::Failed {
                continue;
            }
            let missed = t.saturating_sub(view.last_heard);
            if missed >= self.config.fail_after as u64 {
                view.health = Health::Failed;
                self.events.push((
                    t,
                    FedEvent::NodeFailed {
                        node,
                        missed: missed as u32,
                    },
                ));
                self.metrics.count("fed.nodes.failed", 1);
                failed.push(node);
            } else if missed >= self.config.suspect_after as u64 && view.health == Health::Alive {
                view.health = Health::Suspected;
                self.events.push((
                    t,
                    FedEvent::NodeSuspected {
                        node,
                        missed: missed as u32,
                    },
                ));
                self.metrics.count("fed.nodes.suspected", 1);
            }
        }
        for node in failed {
            self.fail_node(t, node);
        }
    }

    /// Displaces a failed node's roster and plans failover placement.
    fn fail_node(&mut self, t: u64, node: u32) {
        let roster = self
            .hub
            .views
            .get(&node)
            .map(|v| v.roster.clone())
            .unwrap_or_default();
        let mut displaced: Vec<String> = Vec::new();
        for component in roster {
            if self.hub.placement.get(&component) == Some(&node) {
                self.hub.placement.remove(&component);
                self.hub.displaced_from.insert(component.clone(), node);
                self.hub.admitted_failovers.remove(&component);
                displaced.push(component);
            }
        }
        // Placements already in flight *toward* the failed node also need
        // a new home.
        let redirect: Vec<String> = self
            .hub
            .pending
            .iter()
            .filter(|(_, p)| p.target == node)
            .map(|(c, _)| c.clone())
            .collect();
        for component in redirect {
            self.hub.pending.remove(&component);
            displaced.push(component);
        }
        displaced.sort();
        displaced.dedup();
        self.place_wave(t, displaced);
    }

    /// Plans placement for a set of displaced components: groups them by
    /// least-utilized surviving target and sends one Place wave per
    /// target (so the target admits the group through `admit_batch`).
    fn place_wave(&mut self, t: u64, components: Vec<String>) {
        if components.is_empty() {
            return;
        }
        // Surviving = detector-alive. A partitioned-but-alive node is
        // (from the hub's view) failed and never a target. Loads are
        // computed once and updated greedily as the wave fills, so a
        // 10k-component federation plans failover in O(placements +
        // displaced × nodes).
        let mut loads: BTreeMap<u32, f64> = self
            .hub
            .views
            .iter()
            .filter(|(_, view)| view.health != Health::Failed)
            .map(|(&candidate, _)| {
                (
                    candidate,
                    self.hub
                        .estimated_load(candidate, &self.catalog, self.config.cpus_per_node),
                )
            })
            .collect();
        let mut waves: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for component in components {
            let Some(entry) = self.catalog.get(&component) else {
                continue;
            };
            let usage = entry.descriptor.cpu_usage.fraction();
            let mut best: Option<(f64, u32)> = None;
            for (&candidate, &load) in &loads {
                let better = match best {
                    None => true,
                    Some((bl, _)) => load < bl - 1e-12,
                };
                if better {
                    best = Some((load, candidate));
                }
            }
            let Some((load, target)) = best else {
                self.quarantine_failover(t, component, "no surviving node".to_string());
                continue;
            };
            // A target already estimated past a full CPU cannot possibly
            // admit: short-circuit to the supervisor as a rejection.
            let added = usage / self.config.cpus_per_node.max(1) as f64;
            if load + added > 1.0 {
                self.failover_rejected(
                    t,
                    component,
                    target,
                    "estimated load exceeds capacity".to_string(),
                );
                continue;
            }
            *loads.entry(target).or_insert(0.0) += added;
            waves.entry(target).or_default().push(component);
        }
        for (target, wave) in waves {
            self.hub.epoch += 1;
            let epoch = self.hub.epoch;
            for component in &wave {
                let from = self
                    .hub
                    .displaced_from
                    .get(component)
                    .copied()
                    .unwrap_or(u32::MAX);
                self.events.push((
                    t,
                    FedEvent::MigrationPlanned {
                        component: component.clone(),
                        from,
                        to: target,
                        epoch,
                    },
                ));
                self.metrics.count("fed.migrations.planned", 1);
                self.hub
                    .pending
                    .insert(component.clone(), PendingPlacement { target, epoch });
            }
            let mut sink = Sink {
                events: &mut self.events,
                metrics: &mut self.metrics,
            };
            self.net.send(
                FedEndpoint::Hub,
                FedEndpoint::Node(target),
                Payload::Place {
                    components: wave,
                    epoch,
                },
                true,
                t,
                &mut sink,
            );
        }
    }

    /// A node received a placement wave: install it as one batch (one
    /// `admit_batch` pass) and report per-component verdicts.
    fn node_place(&mut self, t: u64, node: u32, components: Vec<String>, epoch: u64) {
        let idx = node as usize;
        if !self.nodes.get(idx).is_some_and(|s| s.alive) {
            return;
        }
        let mut providers: Vec<(String, ComponentProvider)> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        for name in components {
            if self.nodes[idx].bundles.contains_key(&name) {
                // Duplicate wave (retransmission raced the ack): the copy
                // is already here; report its current verdict below.
                names.push(name);
                continue;
            }
            let Some(entry) = self.catalog.get(&name) else {
                continue;
            };
            let factory = entry.factory.clone();
            providers.push((
                format!("fed.{name}"),
                ComponentProvider::new(entry.descriptor.clone(), move || factory()),
            ));
            names.push(name);
        }
        let installed: Vec<String> = providers.iter().map(|(b, _)| b[4..].to_string()).collect();
        if !providers.is_empty() {
            match self.nodes[idx].rt.install_components(providers) {
                Ok(bundles) => {
                    for (name, bundle) in installed.iter().zip(bundles) {
                        self.nodes[idx].bundles.insert(name.clone(), bundle);
                    }
                }
                Err(e) => {
                    // Name collision or framework failure: every
                    // component of the wave is rejected with the error.
                    let rejected: Vec<(String, String)> =
                        names.iter().map(|n| (n.clone(), e.to_string())).collect();
                    let mut sink = Sink {
                        events: &mut self.events,
                        metrics: &mut self.metrics,
                    };
                    self.net.send(
                        FedEndpoint::Node(node),
                        FedEndpoint::Hub,
                        Payload::PlaceAck {
                            node,
                            epoch,
                            admitted: Vec::new(),
                            rejected,
                        },
                        true,
                        t,
                        &mut sink,
                    );
                    return;
                }
            }
        }
        let mut admitted = Vec::new();
        let mut rejected = Vec::new();
        for name in names {
            if self.nodes[idx].rt.component_state(&name) == Some(ComponentState::Active) {
                admitted.push(name);
            } else {
                let reason = self.rejection_reason(idx, &name);
                // Evict the rejected copy so the placement retry is owned
                // by the hub's failover supervisor, not this shard's
                // resolver.
                if let Some(bundle) = self.nodes[idx].bundles.remove(&name) {
                    let _ = self.nodes[idx].rt.uninstall_bundle(bundle);
                }
                rejected.push((name, reason));
            }
        }
        let mut sink = Sink {
            events: &mut self.events,
            metrics: &mut self.metrics,
        };
        self.net.send(
            FedEndpoint::Node(node),
            FedEndpoint::Hub,
            Payload::PlaceAck {
                node,
                epoch,
                admitted,
                rejected,
            },
            true,
            t,
            &mut sink,
        );
    }

    /// The admission rejection reason for a component, fished from the
    /// node's typed event stream (the shard's own evidence).
    fn rejection_reason(&self, idx: usize, name: &str) -> String {
        let drcr = self.nodes[idx].rt.drcr();
        let mut reason = None;
        for event in drcr.events().iter() {
            match &event.event {
                DrcrEvent::AdmissionVerdict {
                    component,
                    admitted: false,
                    reason: r,
                    ..
                }
                | DrcrEvent::GroupAbandoned {
                    component,
                    reason: r,
                    ..
                } if component == name => reason = Some(r.clone()),
                DrcrEvent::WiringUnsatisfied { component, missing } if component == name => {
                    reason = Some(missing.clone())
                }
                _ => {}
            }
        }
        reason.unwrap_or_else(|| "admission rejected".to_string())
    }

    fn hub_place_ack(
        &mut self,
        t: u64,
        node: u32,
        epoch: u64,
        admitted: Vec<String>,
        rejected: Vec<(String, String)>,
    ) {
        let mut stale = Vec::new();
        for component in admitted {
            let current = self.hub.pending.get(&component);
            match current {
                Some(p) if p.epoch == epoch && p.target == node => {
                    self.hub.pending.remove(&component);
                    self.hub.placement.insert(component.clone(), node);
                    self.hub.admitted_failovers.insert(component.clone());
                    self.hub.supervisor.reset(&component);
                    self.events.push((
                        t,
                        FedEvent::MigrationAdmitted {
                            component,
                            node,
                            epoch,
                        },
                    ));
                    self.metrics.count("fed.migrations.admitted", 1);
                }
                _ => {
                    // Stale epoch: the hub re-planned meanwhile; this
                    // copy must not double-run.
                    stale.push(component);
                }
            }
        }
        for (component, reason) in rejected {
            let matches = self
                .hub
                .pending
                .get(&component)
                .is_some_and(|p| p.epoch == epoch && p.target == node);
            if !matches {
                continue;
            }
            self.hub.pending.remove(&component);
            self.failover_rejected(t, component, node, reason);
        }
        if !stale.is_empty() {
            let mut sink = Sink {
                events: &mut self.events,
                metrics: &mut self.metrics,
            };
            self.net.send(
                FedEndpoint::Hub,
                FedEndpoint::Node(node),
                Payload::Retire { components: stale },
                true,
                t,
                &mut sink,
            );
        }
    }

    /// A failover placement bounced: the supervisor rules retry-or-
    /// quarantine with the same policies component supervision uses.
    fn failover_rejected(&mut self, t: u64, component: String, node: u32, reason: String) {
        self.events.push((
            t,
            FedEvent::MigrationRejected {
                component: component.clone(),
                node,
                reason: reason.clone(),
            },
        ));
        self.metrics.count("fed.migrations.rejected", 1);
        let now = self.fed_time(t);
        let name: Rc<str> = Rc::from(component.as_str());
        match self.hub.supervisor.on_fault(&name, now) {
            FaultDecision::Restart { attempt, delay } => {
                let delay_ticks = delay
                    .as_nanos()
                    .div_ceil(self.config.tick.as_nanos().max(1))
                    .max(1);
                self.events.push((
                    t,
                    FedEvent::FailoverRetryScheduled {
                        component: component.clone(),
                        attempt,
                        delay_ticks,
                    },
                ));
                self.metrics.count("fed.failover.retries", 1);
                self.hub
                    .retry_at
                    .entry(t + delay_ticks)
                    .or_default()
                    .push(component);
            }
            FaultDecision::Quarantine { reason: why } => {
                self.quarantine_failover(t, component, format!("{why} (last: {reason})"));
            }
        }
    }

    fn quarantine_failover(&mut self, t: u64, component: String, reason: String) {
        self.events.push((
            t,
            FedEvent::FailoverQuarantined {
                component: component.clone(),
                reason: reason.clone(),
            },
        ));
        self.metrics.count("fed.failover.quarantines", 1);
        self.hub.quarantined.insert(component, reason);
    }

    fn retry_placements(&mut self, t: u64) {
        let Some(batch) = self.hub.retry_at.remove(&t) else {
            return;
        };
        let retriable: Vec<String> = batch
            .into_iter()
            .filter(|c| !self.hub.quarantined.contains_key(c))
            .collect();
        self.place_wave(t, retriable);
    }

    fn node_retire(&mut self, t: u64, node: u32, components: Vec<String>) {
        let idx = node as usize;
        if !self.nodes.get(idx).is_some_and(|s| s.alive) {
            return;
        }
        for component in components {
            let Some(bundle) = self.nodes[idx].bundles.remove(&component) else {
                continue;
            };
            let _ = self.nodes[idx].rt.uninstall_bundle(bundle);
            self.events
                .push((t, FedEvent::ReconcileRetired { node, component }));
            self.metrics.count("fed.reconcile.retired", 1);
        }
    }

    fn fed_time(&self, t: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.config.tick.as_nanos().saturating_mul(t))
    }

    // -----------------------------------------------------------------
    // Introspection
    // -----------------------------------------------------------------

    /// The current federation tick.
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Whether a node's kernel is still advancing.
    pub fn is_alive(&self, node: u32) -> bool {
        self.nodes.get(node as usize).is_some_and(|s| s.alive)
    }

    /// Whether a node has degraded to local-only admission.
    pub fn is_degraded(&self, node: u32) -> bool {
        self.nodes.get(node as usize).is_some_and(|s| s.degraded)
    }

    /// A component's lifecycle state on a given node's shard.
    pub fn component_state_on(&self, node: u32, component: &str) -> Option<ComponentState> {
        self.nodes.get(node as usize)?.rt.component_state(component)
    }

    /// The hub's authoritative placement of a component.
    pub fn placement_of(&self, component: &str) -> Option<u32> {
        self.hub.placement.get(component).copied()
    }

    /// Failover bookkeeping totals. `displaced` counts every component
    /// ever displaced by a node failure; the other three partition the
    /// displaced set (admitted elsewhere / quarantined / still in
    /// flight). Stale entries superseded by reconciliation stay counted
    /// where they ended up.
    pub fn accounting(&self) -> FailoverAccounting {
        let displaced: BTreeSet<&String> = self.hub.displaced_from.keys().collect();
        let admitted = displaced
            .iter()
            .filter(|c| self.hub.admitted_failovers.contains(**c))
            .count();
        let quarantined = displaced
            .iter()
            .filter(|c| self.hub.quarantined.contains_key(**c))
            .count();
        let pending = displaced
            .iter()
            .filter(|c| {
                self.hub.pending.contains_key(**c)
                    || self.hub.retry_at.values().any(|batch| batch.contains(**c))
            })
            .count();
        FailoverAccounting {
            displaced: displaced.len(),
            admitted,
            quarantined,
            pending,
        }
    }

    /// Typed quarantine evidence: component -> reason.
    pub fn quarantine_evidence(&self) -> &BTreeMap<String, String> {
        &self.hub.quarantined
    }

    /// Reservation-consistency check over all *live* nodes: a component
    /// holds a ledger reservation iff its lifecycle state holds
    /// admission. Returns the number of violations (0 = clean).
    pub fn leaked_reservations(&self) -> u64 {
        let mut leaks = 0;
        for slot in &self.nodes {
            if !slot.alive {
                continue;
            }
            let drcr = slot.rt.drcr();
            for name in drcr.component_names() {
                let holds = drcr.state_of(&name).is_some_and(|s| s.holds_admission());
                if drcr.ledger().reservation(&name).is_some() != holds {
                    leaks += 1;
                }
            }
        }
        leaks
    }

    /// Scheduler counters of one node's kernel.
    pub fn node_counters(&self, node: u32) -> Option<SchedCounters> {
        self.nodes
            .get(node as usize)
            .map(|s| s.rt.kernel().counters())
    }

    /// Total deadline misses across live nodes.
    pub fn deadline_misses_on_survivors(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.rt.kernel().counters().deadline_misses)
            .sum()
    }

    /// Number of components Active on a node right now.
    pub fn active_on(&self, node: u32) -> usize {
        let Some(slot) = self.nodes.get(node as usize) else {
            return 0;
        };
        let drcr = slot.rt.drcr();
        drcr.component_names()
            .iter()
            .filter(|n| drcr.state_of(n) == Some(ComponentState::Active))
            .count()
    }

    /// The federation's typed event log, keyed on tick.
    pub fn events(&self) -> &[(u64, FedEvent)] {
        &self.events
    }

    /// Renders the event log to one canonical string (determinism
    /// comparisons byte-compare this).
    pub fn render_events(&self) -> String {
        let mut out = String::new();
        for (t, e) in &self.events {
            out.push_str(&format!("[{t}] {e}\n"));
        }
        out
    }

    /// A deterministic snapshot of the `fed.*` metrics.
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.snapshot()
    }
}
