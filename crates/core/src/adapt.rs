//! Adaptation managers: closing the loop the paper's §2.4 opens.
//!
//! The management interface exists so that "general or application specific
//! adaptation managers can monitor the tasks status and adjust the
//! parameter or even change the application structure according to current
//! available resources and system requirements". This module provides that
//! manager as a reusable harness:
//!
//! * [`AdaptationPolicy`] — a pure decision function from the global
//!   [`SystemView`] + per-CPU pressure to [`AdaptationCommand`]s.
//! * [`AdaptationManager`] — discovers management services through the
//!   registry (exactly like an external bundle would), evaluates its
//!   policies, and applies the commands.
//! * [`LoadShedding`] — the classic built-in policy: when reserved CPU
//!   pressure exceeds a high watermark, suspend the least *important*
//!   active components (importance is the `importance` descriptor property,
//!   default 0) until below it; when pressure falls under the low
//!   watermark, resume the most important suspended ones.

use crate::error::DrcrError;
use crate::lifecycle::ComponentState;
use crate::manage::ComponentControl;
use crate::model::PropertyValue;
use crate::runtime::DrtRuntime;
use crate::view::SystemView;
use std::fmt;

/// A structural or parametric adjustment the manager can apply.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptationCommand {
    /// Suspend a component (reservation kept).
    Suspend(String),
    /// Resume a suspended component.
    Resume(String),
    /// Replace a configuration property over the async bridge.
    SetProperty {
        /// Target component.
        component: String,
        /// Property name.
        name: String,
        /// New value.
        value: PropertyValue,
    },
    /// Switch a component to another declared operating mode (graceful
    /// degradation without losing the component entirely).
    SwitchMode {
        /// Target component.
        component: String,
        /// Mode name ([`crate::model::BASE_MODE`] restores the base
        /// contract).
        mode: String,
    },
}

impl fmt::Display for AdaptationCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptationCommand::Suspend(c) => write!(f, "suspend `{c}`"),
            AdaptationCommand::Resume(c) => write!(f, "resume `{c}`"),
            AdaptationCommand::SetProperty {
                component,
                name,
                value,
            } => write!(f, "set `{component}`.{name} = {value}"),
            AdaptationCommand::SwitchMode { component, mode } => {
                write!(f, "switch `{component}` to mode `{mode}`")
            }
        }
    }
}

/// Inputs a policy sees on each evaluation.
#[derive(Debug, Clone)]
pub struct AdaptationContext {
    /// The DRCR's global view.
    pub view: SystemView,
    /// Importance of each component (`importance` property, default 0).
    pub importance: Vec<(String, i64)>,
    /// Per component: `(declared mode names, current mode)`.
    pub modes: Vec<(String, Vec<String>, String)>,
}

impl AdaptationContext {
    /// Importance of one component.
    pub fn importance_of(&self, name: &str) -> i64 {
        self.importance
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, i)| *i)
            .unwrap_or(0)
    }

    /// Declared alternate modes of one component.
    pub fn modes_of(&self, name: &str) -> &[String] {
        self.modes
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, m, _)| m.as_slice())
            .unwrap_or(&[])
    }

    /// The mode a component currently runs under.
    pub fn current_mode_of(&self, name: &str) -> &str {
        self.modes
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, c)| c.as_str())
            .unwrap_or(crate::model::BASE_MODE)
    }
}

/// A decision function evaluated by the [`AdaptationManager`].
pub trait AdaptationPolicy {
    /// Short policy name for logs.
    fn name(&self) -> &str;

    /// Decides the commands to apply for the current context.
    fn evaluate(&mut self, ctx: &AdaptationContext) -> Vec<AdaptationCommand>;
}

/// Watermark-based load shedding. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct LoadShedding {
    /// Reserved-utilization fraction above which shedding starts.
    pub high_watermark: f64,
    /// Fraction below which restoration starts.
    pub low_watermark: f64,
    /// CPU to govern.
    pub cpu: u32,
}

impl LoadShedding {
    /// A shedding policy for one CPU with the given watermarks.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low < high <= 1`.
    pub fn new(cpu: u32, low_watermark: f64, high_watermark: f64) -> Self {
        assert!(
            0.0 < low_watermark && low_watermark < high_watermark && high_watermark <= 1.0,
            "watermarks must satisfy 0 < low < high <= 1"
        );
        LoadShedding {
            high_watermark,
            low_watermark,
            cpu,
        }
    }
}

impl AdaptationPolicy for LoadShedding {
    fn name(&self) -> &str {
        "load-shedding"
    }

    fn evaluate(&mut self, ctx: &AdaptationContext) -> Vec<AdaptationCommand> {
        let mut commands = Vec::new();
        let mut pressure = ctx.view.utilization(self.cpu);
        if pressure > self.high_watermark {
            // Shed least-important active components until under the mark.
            let mut active: Vec<_> = ctx
                .view
                .components
                .iter()
                .filter(|c| c.cpu == self.cpu && c.state == ComponentState::Active)
                .collect();
            active.sort_by_key(|c| ctx.importance_of(&c.name));
            for c in active {
                if pressure <= self.high_watermark {
                    break;
                }
                // Suspension keeps the reservation, so shedding only helps
                // *runtime* pressure; we still track the reserved number so
                // the walk terminates deterministically.
                pressure -= c.cpu_usage;
                commands.push(AdaptationCommand::Suspend(c.name.to_string()));
            }
        } else if pressure < self.low_watermark {
            // Restore most-important suspended components while room lasts.
            let mut suspended: Vec<_> = ctx
                .view
                .components
                .iter()
                .filter(|c| c.cpu == self.cpu && c.state == ComponentState::Suspended)
                .collect();
            suspended.sort_by_key(|c| std::cmp::Reverse(ctx.importance_of(&c.name)));
            for c in suspended {
                commands.push(AdaptationCommand::Resume(c.name.to_string()));
            }
        }
        commands
    }
}

/// Graceful degradation: under pressure, switch the least-important moded
/// components to their *cheapest* declared mode before anyone gets
/// suspended; on relief, restore the base mode for the most important
/// first.
#[derive(Debug, Clone)]
pub struct GracefulDegradation {
    /// Reserved-utilization fraction above which degradation starts.
    pub high_watermark: f64,
    /// Fraction below which restoration starts.
    pub low_watermark: f64,
    /// CPU to govern.
    pub cpu: u32,
}

impl GracefulDegradation {
    /// A degradation policy for one CPU with the given watermarks.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low < high <= 1`.
    pub fn new(cpu: u32, low_watermark: f64, high_watermark: f64) -> Self {
        assert!(
            0.0 < low_watermark && low_watermark < high_watermark && high_watermark <= 1.0,
            "watermarks must satisfy 0 < low < high <= 1"
        );
        GracefulDegradation {
            high_watermark,
            low_watermark,
            cpu,
        }
    }
}

impl AdaptationPolicy for GracefulDegradation {
    fn name(&self) -> &str {
        "graceful-degradation"
    }

    fn evaluate(&mut self, ctx: &AdaptationContext) -> Vec<AdaptationCommand> {
        let pressure = ctx.view.utilization(self.cpu);
        let mut commands = Vec::new();
        if pressure > self.high_watermark {
            let mut candidates: Vec<_> = ctx
                .view
                .components
                .iter()
                .filter(|c| {
                    c.cpu == self.cpu
                        && c.state == ComponentState::Active
                        && ctx.current_mode_of(&c.name) == crate::model::BASE_MODE
                        && !ctx.modes_of(&c.name).is_empty()
                })
                .collect();
            candidates.sort_by_key(|c| ctx.importance_of(&c.name));
            let mut relief = 0.0;
            for c in candidates {
                if pressure - relief <= self.high_watermark {
                    break;
                }
                // Cheapest declared mode by name order is a policy detail;
                // here: the first declared mode (descriptors list cheaper
                // modes first by convention).
                let mode = ctx.modes_of(&c.name)[0].clone();
                relief += c.cpu_usage; // upper bound on what the switch frees
                commands.push(AdaptationCommand::SwitchMode {
                    component: c.name.to_string(),
                    mode,
                });
            }
        } else if pressure < self.low_watermark {
            let mut degraded: Vec<_> = ctx
                .view
                .components
                .iter()
                .filter(|c| {
                    c.cpu == self.cpu && ctx.current_mode_of(&c.name) != crate::model::BASE_MODE
                })
                .collect();
            degraded.sort_by_key(|c| std::cmp::Reverse(ctx.importance_of(&c.name)));
            for c in degraded {
                commands.push(AdaptationCommand::SwitchMode {
                    component: c.name.to_string(),
                    mode: crate::model::BASE_MODE.to_string(),
                });
            }
        }
        commands
    }
}

/// The manager: evaluates policies and applies their commands through the
/// DRCR-registered management services.
pub struct AdaptationManager {
    policies: Vec<Box<dyn AdaptationPolicy>>,
    log: Vec<String>,
}

impl fmt::Debug for AdaptationManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptationManager")
            .field("policies", &self.policies.len())
            .finish()
    }
}

impl AdaptationManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        AdaptationManager {
            policies: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Adds a policy (builder style).
    pub fn with_policy(mut self, policy: Box<dyn AdaptationPolicy>) -> Self {
        self.policies.push(policy);
        self
    }

    /// What the manager has done so far.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Evaluates every policy once and applies the resulting commands.
    /// Returns the commands applied.
    ///
    /// # Errors
    ///
    /// Stops at the first command that fails, reporting it; commands
    /// already applied stay applied.
    pub fn run_once(&mut self, rt: &mut DrtRuntime) -> Result<Vec<AdaptationCommand>, DrcrError> {
        let ctx = {
            let drcr = rt.drcr();
            let names = drcr.component_names();
            AdaptationContext {
                view: drcr.system_view(),
                importance: names
                    .iter()
                    .map(|name| (name.clone(), component_importance(&drcr, name)))
                    .collect(),
                modes: names
                    .iter()
                    .map(|name| {
                        let declared = drcr
                            .descriptor_ref(name)
                            .map(|d| d.modes.iter().map(|m| m.name.clone()).collect())
                            .unwrap_or_default();
                        let current = drcr
                            .current_mode_ref(name)
                            .unwrap_or(crate::model::BASE_MODE)
                            .to_string();
                        (name.clone(), declared, current)
                    })
                    .collect(),
            }
        };
        let mut applied = Vec::new();
        for policy in &mut self.policies {
            for command in policy.evaluate(&ctx) {
                self.log.push(format!("{}: {command}", policy.name()));
                match &command {
                    AdaptationCommand::Suspend(name) => rt.suspend_component(name)?,
                    AdaptationCommand::Resume(name) => rt.resume_component(name)?,
                    AdaptationCommand::SetProperty {
                        component,
                        name,
                        value,
                    } => {
                        let mgmt = rt.management(component).ok_or_else(|| {
                            DrcrError::Management(format!(
                                "no management service for `{component}`"
                            ))
                        })?;
                        mgmt.set_property(name, value.clone())?;
                    }
                    AdaptationCommand::SwitchMode { component, mode } => {
                        rt.switch_mode(component, mode)?;
                    }
                }
                applied.push(command);
            }
        }
        Ok(applied)
    }
}

impl Default for AdaptationManager {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads a component's `importance` descriptor property from the DRCR view
/// (0 when absent).
fn component_importance(drcr: &crate::drcr::Drcr, name: &str) -> i64 {
    // Importance is declared in the descriptor; the DRCR does not interpret
    // it — adaptation is deliberately outside the executive's core.
    drcr.descriptor_ref(name)
        .and_then(|d| match d.property("importance") {
            Some(PropertyValue::Integer(i)) => Some(*i),
            _ => None,
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::ComponentDescriptor;
    use crate::drcr::ComponentProvider;
    use crate::hybrid::{FnLogic, RtIo};
    use rtos::kernel::KernelConfig;
    use rtos::latency::TimerJitterModel;
    use rtos::time::SimDuration;

    fn component(name: &str, usage: f64, importance: i64) -> ComponentProvider {
        let d = ComponentDescriptor::builder(name)
            .periodic(100, 0, 3)
            .cpu_usage(usage)
            .property("importance", PropertyValue::Integer(importance))
            .build()
            .unwrap();
        ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
    }

    fn runtime() -> DrtRuntime {
        DrtRuntime::new(KernelConfig::new(41).with_timer(TimerJitterModel::ideal()))
    }

    #[test]
    fn sheds_least_important_first() {
        let mut rt = runtime();
        rt.install_component("a.crit", component("crit", 0.4, 10))
            .unwrap();
        rt.install_component("a.mid", component("mid", 0.3, 5))
            .unwrap();
        rt.install_component("a.low", component("low", 0.25, 1))
            .unwrap();
        // Reserved: 0.95 > 0.8 watermark.
        let mut mgr =
            AdaptationManager::new().with_policy(Box::new(LoadShedding::new(0, 0.3, 0.8)));
        let applied = mgr.run_once(&mut rt).unwrap();
        assert_eq!(applied, vec![AdaptationCommand::Suspend("low".into())]);
        assert_eq!(rt.component_state("low"), Some(ComponentState::Suspended));
        assert_eq!(rt.component_state("crit"), Some(ComponentState::Active));
        assert_eq!(rt.component_state("mid"), Some(ComponentState::Active));
    }

    #[test]
    fn restores_when_pressure_drops() {
        let mut rt = runtime();
        let heavy = rt
            .install_component("a.heavy", component("heavy", 0.6, 10))
            .unwrap();
        rt.install_component("a.low", component("low", 0.25, 1))
            .unwrap();
        let mut mgr =
            AdaptationManager::new().with_policy(Box::new(LoadShedding::new(0, 0.5, 0.8)));
        mgr.run_once(&mut rt).unwrap();
        assert_eq!(rt.component_state("low"), Some(ComponentState::Suspended));
        // Heavy leaves; reserved drops to low's 0.25 (kept) < 0.5.
        rt.stop_bundle(heavy).unwrap();
        let applied = mgr.run_once(&mut rt).unwrap();
        assert_eq!(applied, vec![AdaptationCommand::Resume("low".into())]);
        assert_eq!(rt.component_state("low"), Some(ComponentState::Active));
        assert!(mgr.log().len() >= 2);
    }

    #[test]
    fn steady_state_does_nothing() {
        let mut rt = runtime();
        rt.install_component("a.mid", component("mid", 0.6, 5))
            .unwrap();
        let mut mgr =
            AdaptationManager::new().with_policy(Box::new(LoadShedding::new(0, 0.3, 0.8)));
        assert!(mgr.run_once(&mut rt).unwrap().is_empty());
    }

    struct Retune;

    impl AdaptationPolicy for Retune {
        fn name(&self) -> &str {
            "retune"
        }
        fn evaluate(&mut self, ctx: &AdaptationContext) -> Vec<AdaptationCommand> {
            ctx.view
                .components
                .iter()
                .filter(|c| c.state == ComponentState::Active)
                .map(|c| AdaptationCommand::SetProperty {
                    component: c.name.to_string(),
                    name: "gain".into(),
                    value: PropertyValue::Float(0.5),
                })
                .collect()
        }
    }

    #[test]
    fn parametric_adaptation_rides_the_async_bridge() {
        let mut rt = runtime();
        rt.install_component("a.mid", component("mid", 0.2, 5))
            .unwrap();
        let mut mgr = AdaptationManager::new().with_policy(Box::new(Retune));
        let applied = mgr.run_once(&mut rt).unwrap();
        assert_eq!(applied.len(), 1);
        // The property lands after the next RT cycle.
        rt.advance(SimDuration::from_millis(20));
        let mgmt = rt.management("mid").unwrap();
        let token = mgmt.request_property("gain").unwrap();
        rt.advance(SimDuration::from_millis(20));
        match mgmt.poll_reply(token).unwrap() {
            Some(crate::manage::ManagementReply::Property { value, .. }) => {
                assert_eq!(value, Some(PropertyValue::Float(0.5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn watermarks_validated() {
        let _ = LoadShedding::new(0, 0.9, 0.5);
    }

    fn moded(name: &str, usage: f64, cheap: f64, importance: i64) -> ComponentProvider {
        let d = ComponentDescriptor::builder(name)
            .periodic(100, 0, 3)
            .cpu_usage(usage)
            .mode("cheap", 10, cheap, 3)
            .property("importance", PropertyValue::Integer(importance))
            .build()
            .unwrap();
        ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
    }

    #[test]
    fn degradation_downgrades_instead_of_suspending() {
        let mut rt = runtime();
        rt.install_component("a.crit", moded("crit", 0.5, 0.1, 10))
            .unwrap();
        rt.install_component("a.low", moded("low", 0.45, 0.05, 1))
            .unwrap();
        // 0.95 > 0.8: degrade the least important.
        let mut mgr =
            AdaptationManager::new().with_policy(Box::new(GracefulDegradation::new(0, 0.3, 0.8)));
        let applied = mgr.run_once(&mut rt).unwrap();
        assert_eq!(
            applied,
            vec![AdaptationCommand::SwitchMode {
                component: "low".into(),
                mode: "cheap".into()
            }]
        );
        // Still ACTIVE — just cheaper.
        assert_eq!(rt.component_state("low"), Some(ComponentState::Active));
        assert_eq!(rt.drcr().current_mode("low").unwrap(), "cheap");
        assert_eq!(rt.drcr().ledger().reservation("low"), Some((0, 0.05)));
        // Pressure now 0.55; second evaluation is quiet.
        assert!(mgr.run_once(&mut rt).unwrap().is_empty());
    }

    #[test]
    fn degradation_restores_base_mode_on_relief() {
        let mut rt = runtime();
        let crit = rt
            .install_component("a.crit", moded("crit", 0.5, 0.1, 10))
            .unwrap();
        rt.install_component("a.low", moded("low", 0.45, 0.05, 1))
            .unwrap();
        let mut mgr =
            AdaptationManager::new().with_policy(Box::new(GracefulDegradation::new(0, 0.3, 0.8)));
        mgr.run_once(&mut rt).unwrap();
        assert_eq!(rt.drcr().current_mode("low").unwrap(), "cheap");
        // The heavy one leaves: pressure 0.05 < 0.3 -> restore.
        rt.stop_bundle(crit).unwrap();
        let applied = mgr.run_once(&mut rt).unwrap();
        assert_eq!(
            applied,
            vec![AdaptationCommand::SwitchMode {
                component: "low".into(),
                mode: crate::model::BASE_MODE.into()
            }]
        );
        assert_eq!(
            rt.drcr().current_mode("low").unwrap(),
            crate::model::BASE_MODE
        );
        assert_eq!(rt.drcr().ledger().reservation("low"), Some((0, 0.45)));
    }
}
