//! Functional constraint solving: matching inports to outports.
//!
//! A component's *functional constraints* (paper §2.3/§4.3) are satisfied
//! when every one of its inports is fed by a **compatible** outport of an
//! **active** component. Compatibility requires name, interface, data type
//! and size to all agree — the port name doubles as the channel (SHM
//! segment / mailbox) name, so a name match with mismatched shape is a
//! deployment error worth surfacing, which is why the solver distinguishes
//! "no provider" from "provider exists but is incompatible" from "provider
//! exists but is not active".

use crate::descriptor::ComponentDescriptor;
use crate::lifecycle::ComponentState;
use crate::model::PortSpec;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;

/// Why an inport is unsatisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MissingReason {
    /// No component declares a matching outport at all.
    NoProvider,
    /// A component declares an outport with the same name but an
    /// incompatible shape.
    IncompatibleProvider {
        /// The offending provider component.
        provider: String,
    },
    /// A compatible provider exists but is not active.
    ProviderInactive {
        /// The best candidate provider.
        provider: String,
    },
}

/// One unsatisfied inport of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingPort {
    /// The consumer component.
    pub component: String,
    /// The unsatisfied inport name.
    pub port: String,
    /// Why.
    pub reason: MissingReason,
}

impl fmt::Display for MissingPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            MissingReason::NoProvider => {
                write!(f, "`{}`.{}: no provider", self.component, self.port)
            }
            MissingReason::IncompatibleProvider { provider } => write!(
                f,
                "`{}`.{}: provider `{provider}` has an incompatible port shape",
                self.component, self.port
            ),
            MissingReason::ProviderInactive { provider } => write!(
                f,
                "`{}`.{}: provider `{provider}` is not active",
                self.component, self.port
            ),
        }
    }
}

/// A functional-constraint verdict: the chosen `(inport, provider)`
/// bindings on success, the unsatisfied ports with reasons on failure.
pub type WiringResult = Result<Vec<(String, String)>, Vec<MissingPort>>;

/// The wiring solver over a set of registered components.
///
/// Built fresh from the DRCR's records on each resolution pass; holds
/// borrowed descriptors, so it is a short-lived analysis object.
#[derive(Debug)]
pub struct WiringGraph<'a> {
    entries: Vec<(&'a ComponentDescriptor, ComponentState)>,
}

impl<'a> WiringGraph<'a> {
    /// Builds the graph from `(descriptor, current state)` pairs.
    pub fn new(entries: Vec<(&'a ComponentDescriptor, ComponentState)>) -> Self {
        WiringGraph { entries }
    }

    /// Checks the functional constraints of `candidate` against the current
    /// states, returning the chosen provider per inport.
    ///
    /// A provider counts only while [`ComponentState::provides_outputs`]
    /// (i.e. `Active`) — the paper's Display "could not start if no active
    /// calculation task exists". When `assume_active` names the candidate
    /// set of a fixpoint pass, those components count as active too.
    ///
    /// # Errors
    ///
    /// The list of unsatisfied inports, each with its reason.
    pub fn check_functional(
        &self,
        candidate: &ComponentDescriptor,
        assume_active: &[Rc<str>],
    ) -> WiringResult {
        let mut providers = Vec::new();
        let mut missing = Vec::new();
        for inport in &candidate.inports {
            let mut best: Option<MissingReason> = Some(MissingReason::NoProvider);
            let mut chosen: Option<String> = None;
            for (desc, state) in &self.entries {
                if desc.name == candidate.name {
                    continue;
                }
                let Some(outport) = desc.outports.iter().find(|o| o.name == inport.name) else {
                    continue;
                };
                if !outport.compatible_with(inport) {
                    if matches!(best, Some(MissingReason::NoProvider)) {
                        best = Some(MissingReason::IncompatibleProvider {
                            provider: desc.name.to_string(),
                        });
                    }
                    continue;
                }
                let active = state.provides_outputs()
                    || assume_active.iter().any(|n| &**n == desc.name.as_str());
                if active {
                    chosen = Some(desc.name.to_string());
                    best = None;
                    break;
                }
                best = Some(MissingReason::ProviderInactive {
                    provider: desc.name.to_string(),
                });
            }
            match (chosen, best) {
                (Some(provider), _) => providers.push((inport.name.to_string(), provider)),
                (None, Some(reason)) => missing.push(MissingPort {
                    component: candidate.name.to_string(),
                    port: inport.name.to_string(),
                    reason,
                }),
                (None, None) => unreachable!("either chosen or a reason"),
            }
        }
        if missing.is_empty() {
            Ok(providers)
        } else {
            Err(missing)
        }
    }

    /// Names of components whose functional constraints depend on an
    /// outport of `provider` with **no alternative active provider**.
    ///
    /// These are the components the DRCR must deactivate (cascade) when
    /// `provider` leaves.
    pub fn dependents_of(&self, provider: &str) -> Vec<String> {
        let Some((pdesc, _)) = self
            .entries
            .iter()
            .find(|(d, _)| d.name.as_str() == provider)
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (desc, state) in &self.entries {
            if desc.name.as_str() == provider || !state.holds_admission() {
                continue;
            }
            let depends = desc.inports.iter().any(|inport| {
                let fed_by_provider = pdesc.outports.iter().any(|o| o.compatible_with(inport));
                if !fed_by_provider {
                    return false;
                }
                // Any *other* active provider for this inport?
                let alternative = self.entries.iter().any(|(other, ostate)| {
                    other.name != desc.name
                        && other.name.as_str() != provider
                        && ostate.provides_outputs()
                        && other.outports.iter().any(|o| o.compatible_with(inport))
                });
                !alternative
            });
            if depends {
                out.push(desc.name.to_string());
            }
        }
        out
    }

    /// Summary of every channel: `name → (providers, consumers)`.
    pub fn channels(&self) -> BTreeMap<String, (Vec<String>, Vec<String>)> {
        let mut map: BTreeMap<String, (Vec<String>, Vec<String>)> = BTreeMap::new();
        for (desc, _) in &self.entries {
            for p in &desc.outports {
                map.entry(p.name.to_string())
                    .or_default()
                    .0
                    .push(desc.name.to_string());
            }
            for p in &desc.inports {
                map.entry(p.name.to_string())
                    .or_default()
                    .1
                    .push(desc.name.to_string());
            }
        }
        map
    }
}

/// One provider entry in the [`PortIndex`]: a component's outport under a
/// given channel name, plus whether that component currently provides
/// outputs (i.e. is `Active`).
#[derive(Debug, Clone)]
struct ProviderEntry {
    component: Rc<str>,
    port: PortSpec,
    active: bool,
}

/// A persistent index over the port topology, maintained incrementally by
/// the DRCR instead of rebuilding a [`WiringGraph`] per candidate per sweep.
///
/// Three maps:
///
/// * `providers`: outport (channel) name → provider entries, **sorted by
///   component name**. Port names are unique within a component (validated
///   by the descriptor), so there is at most one entry per component per
///   channel — the sorted entry list therefore reproduces exactly the
///   provider scan order of [`WiringGraph::check_functional`], which walks
///   all components in sorted-name order and takes the first outport whose
///   name matches the inport.
/// * `consumers`: inport name → components declaring that inport. This is
///   the dirty-*scope* relation of the reactive engine
///   ([`crate::reactive::ReactiveResolver`]): any provider-side churn on a
///   channel — a provider stopping (seeds the deactivation sweep), but also
///   a provider starting, registering or unregistering (invalidates the
///   consumers' memoized wiring results) — touches exactly the consumers of
///   that channel. The set is a superset of the truly-affected components
///   (shape-incompatible consumers are included); re-checking a
///   still-satisfied consumer is harmless and emits nothing.
/// * `outports_of`: component name → its outport names, so state flips are
///   O(outports · log) without the caller passing the descriptor back in.
///
/// Invalidation rules (all maintained by the DRCR):
///
/// * [`PortIndex::insert`] on component registration (entries start
///   inactive — freshly registered components are `Unsatisfied`/`Disabled`).
/// * [`PortIndex::remove`] on component removal.
/// * [`PortIndex::set_active`] on exactly the transitions that change
///   [`ComponentState::provides_outputs`]: activation and resume (→ true),
///   deactivation and suspension (→ false). Mode switches never touch the
///   index: a mode substitutes frequency/priority/claim, never ports.
#[derive(Debug, Default)]
pub struct PortIndex {
    providers: HashMap<String, Vec<ProviderEntry>>,
    consumers: HashMap<String, BTreeSet<Rc<str>>>,
    outports_of: HashMap<String, Vec<String>>,
}

impl PortIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a newly registered component. Entries start inactive; flip
    /// them with [`PortIndex::set_active`] when the component activates.
    pub fn insert(&mut self, id: &Rc<str>, descriptor: &ComponentDescriptor) {
        debug_assert_eq!(&**id, descriptor.name.as_str());
        let mut outs = Vec::with_capacity(descriptor.outports.len());
        for port in &descriptor.outports {
            let entries = self.providers.entry(port.name.to_string()).or_default();
            match entries.binary_search_by(|e| (*e.component).cmp(id)) {
                Ok(_) => debug_assert!(false, "component `{id}` indexed twice"),
                Err(pos) => entries.insert(
                    pos,
                    ProviderEntry {
                        component: id.clone(),
                        port: port.clone(),
                        active: false,
                    },
                ),
            }
            outs.push(port.name.to_string());
        }
        if !outs.is_empty() {
            self.outports_of.insert(id.to_string(), outs);
        }
        for port in &descriptor.inports {
            self.consumers
                .entry(port.name.to_string())
                .or_default()
                .insert(id.clone());
        }
    }

    /// Drops a removed component's entries.
    pub fn remove(&mut self, name: &str, descriptor: &ComponentDescriptor) {
        for port in &descriptor.outports {
            if let Some(entries) = self.providers.get_mut(port.name.as_str()) {
                entries.retain(|e| &*e.component != name);
                if entries.is_empty() {
                    self.providers.remove(port.name.as_str());
                }
            }
        }
        self.outports_of.remove(name);
        for port in &descriptor.inports {
            if let Some(set) = self.consumers.get_mut(port.name.as_str()) {
                set.remove(name);
                if set.is_empty() {
                    self.consumers.remove(port.name.as_str());
                }
            }
        }
    }

    /// Flips the providing flag of all of `name`'s outports. Call on every
    /// transition that changes [`ComponentState::provides_outputs`].
    pub fn set_active(&mut self, name: &str, active: bool) {
        let Some(outs) = self.outports_of.get(name) else {
            return;
        };
        for channel in outs {
            if let Some(entries) = self.providers.get_mut(channel) {
                if let Ok(pos) = entries.binary_search_by(|e| (*e.component).cmp(name)) {
                    entries[pos].active = active;
                }
            }
        }
    }

    /// Components declaring an inport named `channel` — the candidates to
    /// re-check when a provider of `channel` stops providing. Sorted.
    pub fn consumers_of(&self, channel: &str) -> impl Iterator<Item = &Rc<str>> {
        self.consumers.get(channel).into_iter().flatten()
    }

    /// The outport (channel) names a component was indexed with, so callers
    /// can walk provider-side churn to the affected consumers without
    /// holding the descriptor.
    pub fn outports_of(&self, name: &str) -> impl Iterator<Item = &str> {
        self.outports_of
            .get(name)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// Checks the functional constraints of `candidate` against the index.
    ///
    /// Exactly equivalent to [`WiringGraph::check_functional`] over the same
    /// components and states — same chosen providers, same diagnoses in the
    /// same order — but O(providers-per-port) per inport instead of
    /// O(components).
    ///
    /// # Errors
    ///
    /// The list of unsatisfied inports, each with its reason.
    pub fn check_functional(
        &self,
        candidate: &ComponentDescriptor,
        assume_active: &[Rc<str>],
    ) -> WiringResult {
        let mut providers = Vec::new();
        let mut missing = Vec::new();
        for inport in &candidate.inports {
            let mut best: Option<MissingReason> = Some(MissingReason::NoProvider);
            let mut chosen: Option<String> = None;
            let entries = self
                .providers
                .get(inport.name.as_str())
                .map(Vec::as_slice)
                .unwrap_or_default();
            for entry in entries {
                if *entry.component == *candidate.name.as_str() {
                    continue;
                }
                if !entry.port.compatible_with(inport) {
                    if matches!(best, Some(MissingReason::NoProvider)) {
                        best = Some(MissingReason::IncompatibleProvider {
                            provider: entry.component.to_string(),
                        });
                    }
                    continue;
                }
                let active = entry.active || assume_active.iter().any(|n| **n == *entry.component);
                if active {
                    chosen = Some(entry.component.to_string());
                    best = None;
                    break;
                }
                best = Some(MissingReason::ProviderInactive {
                    provider: entry.component.to_string(),
                });
            }
            match (chosen, best) {
                (Some(provider), _) => providers.push((inport.name.to_string(), provider)),
                (None, Some(reason)) => missing.push(MissingPort {
                    component: candidate.name.to_string(),
                    port: inport.name.to_string(),
                    reason,
                }),
                (None, None) => unreachable!("either chosen or a reason"),
            }
        }
        if missing.is_empty() {
            Ok(providers)
        } else {
            Err(missing)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::ComponentDescriptor;
    use crate::model::PortInterface;
    use rtos::shm::DataType;

    fn calc() -> ComponentDescriptor {
        ComponentDescriptor::builder("calc")
            .periodic(1000, 0, 2)
            .cpu_usage(0.2)
            .outport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap()
    }

    fn disp() -> ComponentDescriptor {
        ComponentDescriptor::builder("disp")
            .periodic(4, 0, 5)
            .cpu_usage(0.05)
            .inport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap()
    }

    #[test]
    fn inport_satisfied_by_active_provider() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&d, ComponentState::Unsatisfied),
        ]);
        let providers = g.check_functional(&d, &[]).unwrap();
        assert_eq!(providers, vec![("latdat".to_string(), "calc".to_string())]);
    }

    #[test]
    fn inactive_provider_reports_reason() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Unsatisfied),
            (&d, ComponentState::Unsatisfied),
        ]);
        let missing = g.check_functional(&d, &[]).unwrap_err();
        assert_eq!(missing.len(), 1);
        assert_eq!(
            missing[0].reason,
            MissingReason::ProviderInactive {
                provider: "calc".into()
            }
        );
        // But an optimistic pass that assumes calc will activate succeeds.
        assert!(g.check_functional(&d, &["calc".into()]).is_ok());
    }

    #[test]
    fn no_provider_at_all() {
        let d = disp();
        let g = WiringGraph::new(vec![(&d, ComponentState::Unsatisfied)]);
        let missing = g.check_functional(&d, &[]).unwrap_err();
        assert_eq!(missing[0].reason, MissingReason::NoProvider);
        assert!(missing[0].to_string().contains("no provider"));
    }

    #[test]
    fn incompatible_shape_reports_provider() {
        let bad_calc = ComponentDescriptor::builder("calc")
            .periodic(1000, 0, 2)
            .outport("latdat", PortInterface::Shm, DataType::Byte, 4) // wrong type
            .build()
            .unwrap();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&bad_calc, ComponentState::Active),
            (&d, ComponentState::Unsatisfied),
        ]);
        let missing = g.check_functional(&d, &[]).unwrap_err();
        assert_eq!(
            missing[0].reason,
            MissingReason::IncompatibleProvider {
                provider: "calc".into()
            }
        );
    }

    #[test]
    fn component_cannot_feed_itself() {
        let selfloop = ComponentDescriptor::builder("loop")
            .periodic(10, 0, 2)
            .outport("chan", PortInterface::Shm, DataType::Byte, 1)
            .inport("chan2", PortInterface::Shm, DataType::Byte, 1)
            .build()
            .unwrap();
        let g = WiringGraph::new(vec![(&selfloop, ComponentState::Active)]);
        assert!(g.check_functional(&selfloop, &[]).is_err());
    }

    #[test]
    fn dependents_cascade_without_alternatives() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&d, ComponentState::Active),
        ]);
        assert_eq!(g.dependents_of("calc"), vec!["disp".to_string()]);
        assert!(g.dependents_of("disp").is_empty());
    }

    #[test]
    fn alternative_provider_prevents_cascade() {
        let c = calc();
        let backup = ComponentDescriptor::builder("calc2")
            .periodic(1000, 0, 3)
            .outport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&backup, ComponentState::Active),
            (&d, ComponentState::Active),
        ]);
        assert!(g.dependents_of("calc").is_empty());
        // But if the backup is not active, the cascade applies.
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&backup, ComponentState::Unsatisfied),
            (&d, ComponentState::Active),
        ]);
        assert_eq!(g.dependents_of("calc"), vec!["disp".to_string()]);
    }

    #[test]
    fn channels_summarize_topology() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&d, ComponentState::Active),
        ]);
        let channels = g.channels();
        let (providers, consumers) = &channels["latdat"];
        assert_eq!(providers, &vec!["calc".to_string()]);
        assert_eq!(consumers, &vec!["disp".to_string()]);
    }

    #[test]
    fn suspended_provider_does_not_satisfy() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Suspended),
            (&d, ComponentState::Unsatisfied),
        ]);
        assert!(g.check_functional(&d, &[]).is_err());
    }

    fn index_of(entries: &[(&ComponentDescriptor, bool)]) -> PortIndex {
        let mut idx = PortIndex::new();
        for (desc, active) in entries {
            let id: Rc<str> = Rc::from(desc.name.as_str());
            idx.insert(&id, desc);
            idx.set_active(&id, *active);
        }
        idx
    }

    #[test]
    fn index_matches_graph_on_every_state_combination() {
        let c = calc();
        let backup = ComponentDescriptor::builder("calc2")
            .periodic(1000, 0, 3)
            .outport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap();
        let bad = ComponentDescriptor::builder("badpro")
            .periodic(10, 0, 2)
            .outport("latdat", PortInterface::Shm, DataType::Byte, 4)
            .build()
            .unwrap();
        let d = disp();
        let descs = [&bad, &c, &backup, &d];
        let assume: Vec<Rc<str>> = vec!["calc2".into()];
        // Exhaust all active/inactive combinations of the three providers
        // and assert index and graph agree on result AND diagnosis order.
        for mask in 0..8u32 {
            let act = |i: u32| mask & (1 << i) != 0;
            let states = [act(0), act(1), act(2), false];
            let graph = WiringGraph::new(
                descs
                    .iter()
                    .zip(states)
                    .map(|(desc, a)| {
                        (
                            *desc,
                            if a {
                                ComponentState::Active
                            } else {
                                ComponentState::Unsatisfied
                            },
                        )
                    })
                    .collect(),
            );
            let idx = index_of(&descs.iter().copied().zip(states).collect::<Vec<_>>());
            for assume_active in [&[][..], &assume[..]] {
                assert_eq!(
                    idx.check_functional(&d, assume_active),
                    graph.check_functional(&d, assume_active),
                    "mask {mask:03b}, assume {assume_active:?}"
                );
            }
        }
    }

    #[test]
    fn index_tracks_removal_and_reactivation() {
        let c = calc();
        let d = disp();
        let mut idx = index_of(&[(&c, true), (&d, false)]);
        assert_eq!(
            idx.check_functional(&d, &[]).unwrap(),
            vec![("latdat".to_string(), "calc".to_string())]
        );
        idx.set_active("calc", false);
        let missing = idx.check_functional(&d, &[]).unwrap_err();
        assert_eq!(
            missing[0].reason,
            MissingReason::ProviderInactive {
                provider: "calc".into()
            }
        );
        idx.remove("calc", &c);
        let missing = idx.check_functional(&d, &[]).unwrap_err();
        assert_eq!(missing[0].reason, MissingReason::NoProvider);
        // Consumers stay registered until removed themselves.
        let consumers: Vec<_> = idx.consumers_of("latdat").collect();
        assert_eq!(consumers.len(), 1);
        assert_eq!(&**consumers[0], "disp");
        idx.remove("disp", &d);
        assert_eq!(idx.consumers_of("latdat").count(), 0);
    }

    #[test]
    fn index_ignores_self_feeding() {
        let selfloop = ComponentDescriptor::builder("loop")
            .periodic(10, 0, 2)
            .outport("chan", PortInterface::Shm, DataType::Byte, 1)
            .inport("chan2", PortInterface::Shm, DataType::Byte, 1)
            .build()
            .unwrap();
        let idx = index_of(&[(&selfloop, true)]);
        assert!(idx.check_functional(&selfloop, &[]).is_err());
    }
}
