//! Functional constraint solving: matching inports to outports.
//!
//! A component's *functional constraints* (paper §2.3/§4.3) are satisfied
//! when every one of its inports is fed by a **compatible** outport of an
//! **active** component. Compatibility requires name, interface, data type
//! and size to all agree — the port name doubles as the channel (SHM
//! segment / mailbox) name, so a name match with mismatched shape is a
//! deployment error worth surfacing, which is why the solver distinguishes
//! "no provider" from "provider exists but is incompatible" from "provider
//! exists but is not active".

use crate::descriptor::ComponentDescriptor;
use crate::lifecycle::ComponentState;
use std::collections::BTreeMap;
use std::fmt;

/// Why an inport is unsatisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MissingReason {
    /// No component declares a matching outport at all.
    NoProvider,
    /// A component declares an outport with the same name but an
    /// incompatible shape.
    IncompatibleProvider {
        /// The offending provider component.
        provider: String,
    },
    /// A compatible provider exists but is not active.
    ProviderInactive {
        /// The best candidate provider.
        provider: String,
    },
}

/// One unsatisfied inport of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingPort {
    /// The consumer component.
    pub component: String,
    /// The unsatisfied inport name.
    pub port: String,
    /// Why.
    pub reason: MissingReason,
}

impl fmt::Display for MissingPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            MissingReason::NoProvider => {
                write!(f, "`{}`.{}: no provider", self.component, self.port)
            }
            MissingReason::IncompatibleProvider { provider } => write!(
                f,
                "`{}`.{}: provider `{provider}` has an incompatible port shape",
                self.component, self.port
            ),
            MissingReason::ProviderInactive { provider } => write!(
                f,
                "`{}`.{}: provider `{provider}` is not active",
                self.component, self.port
            ),
        }
    }
}

/// The wiring solver over a set of registered components.
///
/// Built fresh from the DRCR's records on each resolution pass; holds
/// borrowed descriptors, so it is a short-lived analysis object.
#[derive(Debug)]
pub struct WiringGraph<'a> {
    entries: Vec<(&'a ComponentDescriptor, ComponentState)>,
}

impl<'a> WiringGraph<'a> {
    /// Builds the graph from `(descriptor, current state)` pairs.
    pub fn new(entries: Vec<(&'a ComponentDescriptor, ComponentState)>) -> Self {
        WiringGraph { entries }
    }

    /// Checks the functional constraints of `candidate` against the current
    /// states, returning the chosen provider per inport.
    ///
    /// A provider counts only while [`ComponentState::provides_outputs`]
    /// (i.e. `Active`) — the paper's Display "could not start if no active
    /// calculation task exists". When `assume_active` names the candidate
    /// set of a fixpoint pass, those components count as active too.
    ///
    /// # Errors
    ///
    /// The list of unsatisfied inports, each with its reason.
    pub fn check_functional(
        &self,
        candidate: &ComponentDescriptor,
        assume_active: &[String],
    ) -> Result<Vec<(String, String)>, Vec<MissingPort>> {
        let mut providers = Vec::new();
        let mut missing = Vec::new();
        for inport in &candidate.inports {
            let mut best: Option<MissingReason> = Some(MissingReason::NoProvider);
            let mut chosen: Option<String> = None;
            for (desc, state) in &self.entries {
                if desc.name == candidate.name {
                    continue;
                }
                let Some(outport) = desc.outports.iter().find(|o| o.name == inport.name) else {
                    continue;
                };
                if !outport.compatible_with(inport) {
                    if matches!(best, Some(MissingReason::NoProvider)) {
                        best = Some(MissingReason::IncompatibleProvider {
                            provider: desc.name.to_string(),
                        });
                    }
                    continue;
                }
                let active = state.provides_outputs()
                    || assume_active.iter().any(|n| n == desc.name.as_str());
                if active {
                    chosen = Some(desc.name.to_string());
                    best = None;
                    break;
                }
                best = Some(MissingReason::ProviderInactive {
                    provider: desc.name.to_string(),
                });
            }
            match (chosen, best) {
                (Some(provider), _) => providers.push((inport.name.to_string(), provider)),
                (None, Some(reason)) => missing.push(MissingPort {
                    component: candidate.name.to_string(),
                    port: inport.name.to_string(),
                    reason,
                }),
                (None, None) => unreachable!("either chosen or a reason"),
            }
        }
        if missing.is_empty() {
            Ok(providers)
        } else {
            Err(missing)
        }
    }

    /// Names of components whose functional constraints depend on an
    /// outport of `provider` with **no alternative active provider**.
    ///
    /// These are the components the DRCR must deactivate (cascade) when
    /// `provider` leaves.
    pub fn dependents_of(&self, provider: &str) -> Vec<String> {
        let Some((pdesc, _)) = self
            .entries
            .iter()
            .find(|(d, _)| d.name.as_str() == provider)
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (desc, state) in &self.entries {
            if desc.name.as_str() == provider || !state.holds_admission() {
                continue;
            }
            let depends = desc.inports.iter().any(|inport| {
                let fed_by_provider = pdesc.outports.iter().any(|o| o.compatible_with(inport));
                if !fed_by_provider {
                    return false;
                }
                // Any *other* active provider for this inport?
                let alternative = self.entries.iter().any(|(other, ostate)| {
                    other.name != desc.name
                        && other.name.as_str() != provider
                        && ostate.provides_outputs()
                        && other.outports.iter().any(|o| o.compatible_with(inport))
                });
                !alternative
            });
            if depends {
                out.push(desc.name.to_string());
            }
        }
        out
    }

    /// Summary of every channel: `name → (providers, consumers)`.
    pub fn channels(&self) -> BTreeMap<String, (Vec<String>, Vec<String>)> {
        let mut map: BTreeMap<String, (Vec<String>, Vec<String>)> = BTreeMap::new();
        for (desc, _) in &self.entries {
            for p in &desc.outports {
                map.entry(p.name.to_string())
                    .or_default()
                    .0
                    .push(desc.name.to_string());
            }
            for p in &desc.inports {
                map.entry(p.name.to_string())
                    .or_default()
                    .1
                    .push(desc.name.to_string());
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::ComponentDescriptor;
    use crate::model::PortInterface;
    use rtos::shm::DataType;

    fn calc() -> ComponentDescriptor {
        ComponentDescriptor::builder("calc")
            .periodic(1000, 0, 2)
            .cpu_usage(0.2)
            .outport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap()
    }

    fn disp() -> ComponentDescriptor {
        ComponentDescriptor::builder("disp")
            .periodic(4, 0, 5)
            .cpu_usage(0.05)
            .inport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap()
    }

    #[test]
    fn inport_satisfied_by_active_provider() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&d, ComponentState::Unsatisfied),
        ]);
        let providers = g.check_functional(&d, &[]).unwrap();
        assert_eq!(providers, vec![("latdat".to_string(), "calc".to_string())]);
    }

    #[test]
    fn inactive_provider_reports_reason() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Unsatisfied),
            (&d, ComponentState::Unsatisfied),
        ]);
        let missing = g.check_functional(&d, &[]).unwrap_err();
        assert_eq!(missing.len(), 1);
        assert_eq!(
            missing[0].reason,
            MissingReason::ProviderInactive {
                provider: "calc".into()
            }
        );
        // But an optimistic pass that assumes calc will activate succeeds.
        assert!(g.check_functional(&d, &["calc".into()]).is_ok());
    }

    #[test]
    fn no_provider_at_all() {
        let d = disp();
        let g = WiringGraph::new(vec![(&d, ComponentState::Unsatisfied)]);
        let missing = g.check_functional(&d, &[]).unwrap_err();
        assert_eq!(missing[0].reason, MissingReason::NoProvider);
        assert!(missing[0].to_string().contains("no provider"));
    }

    #[test]
    fn incompatible_shape_reports_provider() {
        let bad_calc = ComponentDescriptor::builder("calc")
            .periodic(1000, 0, 2)
            .outport("latdat", PortInterface::Shm, DataType::Byte, 4) // wrong type
            .build()
            .unwrap();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&bad_calc, ComponentState::Active),
            (&d, ComponentState::Unsatisfied),
        ]);
        let missing = g.check_functional(&d, &[]).unwrap_err();
        assert_eq!(
            missing[0].reason,
            MissingReason::IncompatibleProvider {
                provider: "calc".into()
            }
        );
    }

    #[test]
    fn component_cannot_feed_itself() {
        let selfloop = ComponentDescriptor::builder("loop")
            .periodic(10, 0, 2)
            .outport("chan", PortInterface::Shm, DataType::Byte, 1)
            .inport("chan2", PortInterface::Shm, DataType::Byte, 1)
            .build()
            .unwrap();
        let g = WiringGraph::new(vec![(&selfloop, ComponentState::Active)]);
        assert!(g.check_functional(&selfloop, &[]).is_err());
    }

    #[test]
    fn dependents_cascade_without_alternatives() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&d, ComponentState::Active),
        ]);
        assert_eq!(g.dependents_of("calc"), vec!["disp".to_string()]);
        assert!(g.dependents_of("disp").is_empty());
    }

    #[test]
    fn alternative_provider_prevents_cascade() {
        let c = calc();
        let backup = ComponentDescriptor::builder("calc2")
            .periodic(1000, 0, 3)
            .outport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&backup, ComponentState::Active),
            (&d, ComponentState::Active),
        ]);
        assert!(g.dependents_of("calc").is_empty());
        // But if the backup is not active, the cascade applies.
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&backup, ComponentState::Unsatisfied),
            (&d, ComponentState::Active),
        ]);
        assert_eq!(g.dependents_of("calc"), vec!["disp".to_string()]);
    }

    #[test]
    fn channels_summarize_topology() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Active),
            (&d, ComponentState::Active),
        ]);
        let channels = g.channels();
        let (providers, consumers) = &channels["latdat"];
        assert_eq!(providers, &vec!["calc".to_string()]);
        assert_eq!(consumers, &vec!["disp".to_string()]);
    }

    #[test]
    fn suspended_provider_does_not_satisfy() {
        let c = calc();
        let d = disp();
        let g = WiringGraph::new(vec![
            (&c, ComponentState::Suspended),
            (&d, ComponentState::Unsatisfied),
        ]);
        assert!(g.check_functional(&d, &[]).is_err());
    }
}
