//! Observability for the DRCR executive: typed events and a metrics
//! registry, mirroring [`rtos::trace`] one layer up.
//!
//! The executive's decisions — resolve rounds, admission verdicts, wiring
//! diagnoses, cascades, mode switches, rollbacks — are [`DrcrEvent`]s;
//! management-bridge traffic (command enqueue, reply drain and latency) is
//! [`BridgeEvent`]s. Both flow through the same bounded-ring +
//! live-subscriber machinery as kernel events ([`rtos::trace::EventSink`]),
//! so one `TraceSubscriber` implementation can tap any layer.
//!
//! Alongside the event streams sits a [`MetricsRegistry`]: named counters,
//! gauges and fixed-bucket histograms, snapshotable as a deterministic
//! [`MetricsReport`]. Everything is keyed on virtual time and event counts
//! only — two runs with the same seed produce byte-identical reports.

use crate::lifecycle::ComponentState;
use std::collections::BTreeMap;
use std::fmt;

pub use rtos::trace::{EventSink, Timestamped, TraceRing, TraceSubscriber};

/// A decision or state change inside the DRCR executive.
///
/// The `Display` rendering matches the pre-typed decision-log strings
/// verbatim; render an event with `to_string()` where a human-readable
/// line is wanted — e.g. map `drcr.events()` through `to_string()` to
/// reconstruct the whole legacy decision log.
#[derive(Debug, Clone, PartialEq)]
pub enum DrcrEvent {
    /// A resolve pass (to fixpoint) began.
    ResolveRoundStarted {
        /// Monotonic resolve-round number.
        round: u64,
    },
    /// A resolve pass reached its fixpoint.
    ResolveRoundEnded {
        /// The round that ended.
        round: u64,
        /// Components activated during the round.
        activations: u32,
        /// Components deactivated during the round.
        deactivations: u32,
    },
    /// A component registered with the executive.
    Registered {
        /// Component name.
        component: String,
    },
    /// A registration was refused (duplicate name).
    RegistrationRefused {
        /// Why.
        reason: String,
    },
    /// One resolver's verdict on one candidate.
    AdmissionVerdict {
        /// The candidate component.
        component: String,
        /// The resolver that ruled (internal or customized).
        resolver: String,
        /// Whether the resolver was the internal one.
        internal: bool,
        /// The verdict.
        admitted: bool,
        /// Rejection reason (empty on admission).
        reason: String,
    },
    /// The response-time analysis behind an internal admission verdict:
    /// the computed worst-case response times of the hypothetical task set
    /// (candidate included). Emitted only under
    /// [`ResolutionStrategy::ResponseTime`](crate::drcr::ResolutionStrategy),
    /// immediately before the corresponding
    /// [`DrcrEvent::AdmissionVerdict`].
    AdmissionAnalysis {
        /// The candidate component.
        component: String,
        /// The CPU analysed.
        cpu: u32,
        /// Whether every task met its implicit deadline.
        schedulable: bool,
        /// `(task, wcrt_ns, deadline_ns)` per analysed task, priority
        /// order; empty when the aperiodic utilization fallback ruled.
        wcrts: Vec<(String, u64, u64)>,
    },
    /// Functional constraints unsatisfied: the component stays waiting.
    WiringUnsatisfied {
        /// The component.
        component: String,
        /// The unbound inports, rendered.
        missing: String,
    },
    /// A departure cascade deactivated a dependent component.
    CascadeDeactivation {
        /// The dependent being deactivated.
        component: String,
        /// The broken constraint.
        reason: String,
    },
    /// A dependency cycle is being co-activated as a group.
    GroupCoActivation {
        /// The members, sorted.
        members: Vec<String>,
    },
    /// Group activation abandoned: one member was rejected.
    GroupAbandoned {
        /// The rejected member.
        component: String,
        /// The resolver that rejected it.
        resolver: String,
        /// Whether the resolver was the internal one.
        internal: bool,
        /// The rejection reason.
        reason: String,
    },
    /// A component went active.
    Activated {
        /// The component.
        component: String,
    },
    /// An activation attempt errored (not a constraint rejection).
    ActivationFailed {
        /// The component.
        component: String,
        /// The error.
        reason: String,
    },
    /// A mid-activation failure rolled back the kernel objects already
    /// created (channels, tasks).
    Rollback {
        /// The component whose activation unwound.
        component: String,
        /// What failed.
        reason: String,
    },
    /// A component was deactivated.
    Deactivated {
        /// The component.
        component: String,
        /// The state it fell back to.
        to: ComponentState,
        /// Why.
        reason: String,
    },
    /// A component's contract was re-written for an operating mode.
    ModeSwitch {
        /// The component.
        component: String,
        /// The mode substituted in.
        mode: String,
        /// The mode's frequency.
        frequency_hz: u32,
        /// The mode's CPU claim.
        cpu_usage: f64,
    },
    /// An active component's RT task panicked; the kernel contained it and
    /// the supervisor is about to rule.
    ComponentFault {
        /// The faulted component.
        component: String,
        /// The rendered panic payload.
        cause: String,
        /// Lifetime fault count of the task instance.
        total_faults: u64,
    },
    /// The supervisor granted a restart attempt (delay 0 for immediate
    /// policies; a backoff delay otherwise).
    RestartScheduled {
        /// The component.
        component: String,
        /// 1-based attempt number.
        attempt: u32,
        /// Virtual-time delay before the attempt runs.
        delay_ns: u64,
    },
    /// A scheduled restart attempt was released to constraint resolution.
    RestartAttempt {
        /// The component.
        component: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The supervisor quarantined the component: it falls to `Disabled`,
    /// its reservation is released, and resolution ignores it until an
    /// operator re-enables it.
    Quarantined {
        /// The component.
        component: String,
        /// Why (fail-stop, budget exhausted, flap window, enforcement).
        reason: String,
    },
    /// The contract monitor could not judge a component this round and
    /// skipped it rather than silently exempting it (e.g. the component is
    /// missing from the system view, so no claim is known).
    EnforcementSkipped {
        /// The component.
        component: String,
        /// Why the check could not run.
        reason: String,
    },
    /// The stochastic contract estimator published a measured claim: the
    /// component's contract was re-written from its declared `cpuusage` to
    /// a quantile of its observed per-cycle demand, and the component is
    /// re-admitted against the refined claim on the next resolve pass.
    ClaimRefined {
        /// The component.
        component: String,
        /// The claim previously in force.
        declared: f64,
        /// The measured claim substituted in.
        refined: f64,
        /// Cycles of evidence behind the refinement.
        samples: u64,
    },
    /// A probabilistic contract violation: the lower confidence bound on
    /// the component's per-cycle over-budget rate exceeds the tolerated
    /// miss rate. This is the typed evidence behind a stochastic-monitor
    /// quarantine — a verdict over the whole observed distribution, not a
    /// single-window ratio.
    StochasticViolation {
        /// The component.
        component: String,
        /// Its declared CPU fraction.
        claimed: f64,
        /// Observed fraction of cycles over the per-cycle budget.
        observed_rate: f64,
        /// One-sided lower confidence bound on the true over-budget rate.
        rate_lower_bound: f64,
        /// Cycles of evidence behind the verdict.
        samples: u64,
    },
}

impl fmt::Display for DrcrEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrcrEvent::ResolveRoundStarted { round } => {
                write!(f, "resolve round {round} started")
            }
            DrcrEvent::ResolveRoundEnded {
                round,
                activations,
                deactivations,
            } => write!(
                f,
                "resolve round {round} ended ({activations} activated, {deactivations} deactivated)"
            ),
            DrcrEvent::Registered { component } => {
                write!(f, "registered `{component}`")
            }
            DrcrEvent::RegistrationRefused { reason } => {
                write!(f, "registration refused: {reason}")
            }
            DrcrEvent::AdmissionVerdict {
                component,
                resolver,
                internal,
                admitted,
                reason,
            } => {
                let kind = if *internal { "internal" } else { "customized" };
                if *admitted {
                    write!(f, "`{component}` admitted by {kind} resolver ({resolver})")
                } else {
                    write!(
                        f,
                        "`{component}` rejected by {kind} resolver ({resolver}): {reason}"
                    )
                }
            }
            DrcrEvent::AdmissionAnalysis {
                component,
                cpu,
                schedulable,
                wcrts,
            } => {
                let verdict = if *schedulable {
                    "schedulable"
                } else {
                    "unschedulable"
                };
                write!(
                    f,
                    "RTA for `{component}` on CPU {cpu}: {verdict} ({} tasks",
                    wcrts.len()
                )?;
                if let Some(worst) = wcrts.iter().map(|(_, w, _)| *w).max() {
                    write!(f, ", worst WCRT {worst} ns")?;
                }
                write!(f, ")")
            }
            DrcrEvent::WiringUnsatisfied { component, missing } => {
                write!(f, "`{component}` stays unsatisfied: {missing}")
            }
            DrcrEvent::CascadeDeactivation { component, reason } => {
                write!(f, "cascade: deactivating `{component}`: {reason}")
            }
            DrcrEvent::GroupCoActivation { members } => {
                write!(f, "co-activating dependency cycle: {}", members.join(", "))
            }
            DrcrEvent::GroupAbandoned {
                component,
                resolver,
                internal,
                reason,
            } => {
                if *internal {
                    write!(
                        f,
                        "group activation abandoned: `{component}` rejected by internal resolver: {reason}"
                    )
                } else {
                    write!(
                        f,
                        "group activation abandoned: `{component}` rejected by customized resolver ({resolver}): {reason}"
                    )
                }
            }
            DrcrEvent::Activated { component } => write!(f, "activated `{component}`"),
            DrcrEvent::ActivationFailed { component, reason } => {
                write!(f, "activation of `{component}` failed: {reason}")
            }
            DrcrEvent::Rollback { component, reason } => {
                write!(f, "activation of `{component}` rolled back: {reason}")
            }
            DrcrEvent::Deactivated {
                component,
                to,
                reason,
            } => write!(f, "deactivated `{component}` -> {to:?}: {reason}"),
            DrcrEvent::ModeSwitch {
                component,
                mode,
                frequency_hz,
                cpu_usage,
            } => write!(
                f,
                "`{component}` contract re-written for mode `{mode}` (freq {frequency_hz} Hz, claim {cpu_usage:.3})"
            ),
            DrcrEvent::ComponentFault {
                component,
                cause,
                total_faults,
            } => write!(
                f,
                "fault in `{component}`: {cause} (fault #{total_faults})"
            ),
            DrcrEvent::RestartScheduled {
                component,
                attempt,
                delay_ns,
            } => write!(
                f,
                "restart #{attempt} of `{component}` scheduled in {delay_ns} ns"
            ),
            DrcrEvent::RestartAttempt { component, attempt } => {
                write!(f, "restart #{attempt} of `{component}` released")
            }
            DrcrEvent::Quarantined { component, reason } => {
                write!(f, "quarantined `{component}`: {reason}")
            }
            DrcrEvent::EnforcementSkipped { component, reason } => {
                write!(f, "enforcement skipped `{component}`: {reason}")
            }
            DrcrEvent::ClaimRefined {
                component,
                declared,
                refined,
                samples,
            } => write!(
                f,
                "`{component}` claim refined {declared:.3} -> {refined:.3} ({samples} cycles observed)"
            ),
            DrcrEvent::StochasticViolation {
                component,
                claimed,
                observed_rate,
                rate_lower_bound,
                samples,
            } => write!(
                f,
                "stochastic violation in `{component}`: over-budget rate {observed_rate:.3} (lower bound {rate_lower_bound:.3}, {samples} cycles) against claim {claimed:.3}"
            ),
        }
    }
}

impl DrcrEvent {
    /// The component this event concerns, when it concerns exactly one.
    pub fn component(&self) -> Option<&str> {
        match self {
            DrcrEvent::Registered { component }
            | DrcrEvent::AdmissionVerdict { component, .. }
            | DrcrEvent::AdmissionAnalysis { component, .. }
            | DrcrEvent::WiringUnsatisfied { component, .. }
            | DrcrEvent::CascadeDeactivation { component, .. }
            | DrcrEvent::GroupAbandoned { component, .. }
            | DrcrEvent::Activated { component }
            | DrcrEvent::ActivationFailed { component, .. }
            | DrcrEvent::Rollback { component, .. }
            | DrcrEvent::Deactivated { component, .. }
            | DrcrEvent::ModeSwitch { component, .. }
            | DrcrEvent::ComponentFault { component, .. }
            | DrcrEvent::RestartScheduled { component, .. }
            | DrcrEvent::RestartAttempt { component, .. }
            | DrcrEvent::Quarantined { component, .. }
            | DrcrEvent::EnforcementSkipped { component, .. }
            | DrcrEvent::ClaimRefined { component, .. }
            | DrcrEvent::StochasticViolation { component, .. } => Some(component),
            _ => None,
        }
    }
}

/// Management-bridge traffic between the non-RT side and an RT task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeEvent {
    /// A command was posted into a component's command mailbox.
    CommandEnqueued {
        /// The target component.
        component: String,
        /// Correlation token, for commands that expect a reply.
        token: Option<u32>,
        /// Pending commands in the mailbox after the enqueue.
        depth: usize,
    },
    /// A reply-mailbox drain completed.
    RepliesDrained {
        /// The polled component.
        component: String,
        /// Replies pulled out in this drain.
        count: u32,
    },
    /// A tokened request completed its round trip.
    ReplyLatency {
        /// The component that answered.
        component: String,
        /// The request's token.
        token: u32,
        /// Enqueue → drain latency in virtual nanoseconds.
        latency_ns: u64,
    },
}

impl fmt::Display for BridgeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BridgeEvent::CommandEnqueued {
                component,
                token,
                depth,
            } => match token {
                Some(t) => write!(f, "command -> `{component}` (token {t}, depth {depth})"),
                None => write!(f, "command -> `{component}` (depth {depth})"),
            },
            BridgeEvent::RepliesDrained { component, count } => {
                write!(f, "drained {count} replies from `{component}`")
            }
            BridgeEvent::ReplyLatency {
                component,
                token,
                latency_ns,
            } => write!(
                f,
                "reply from `{component}` (token {token}) after {latency_ns} ns"
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Federation events
// ---------------------------------------------------------------------

/// One end of an inter-node bridge link: the hub coordinator or a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FedEndpoint {
    /// The hub coordinator holding the synced global view.
    Hub,
    /// A federated node by id.
    Node(u32),
}

impl fmt::Display for FedEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedEndpoint::Hub => write!(f, "hub"),
            FedEndpoint::Node(id) => write!(f, "node {id}"),
        }
    }
}

/// A decision or state change inside a federation
/// ([`crate::federation::Federation`]): failure detection, cross-node
/// failover, partition degradation and bridge-link delivery, all keyed on
/// the federation tick they happened at.
#[derive(Debug, Clone, PartialEq)]
pub enum FedEvent {
    /// The failure detector moved a node to Suspected.
    NodeSuspected {
        /// The node.
        node: u32,
        /// Consecutive heartbeats missed.
        missed: u32,
    },
    /// The failure detector declared a node Failed; its components are
    /// displaced and failover placement begins.
    NodeFailed {
        /// The node.
        node: u32,
        /// Consecutive heartbeats missed.
        missed: u32,
    },
    /// The fault plan hard-killed a node (ground truth, distinct from the
    /// detector's verdict).
    NodeCrashed {
        /// The node.
        node: u32,
    },
    /// The fault plan cut a node set off from the hub.
    PartitionStarted {
        /// The isolated (minority) nodes.
        isolated: Vec<u32>,
    },
    /// The active partition healed.
    PartitionHealed,
    /// A node lost hub contact long enough to fall back to local-only
    /// admission.
    NodeDegraded {
        /// The node.
        node: u32,
        /// Ticks since the last hub contact.
        since_ticks: u32,
    },
    /// A degraded or falsely-failed node re-established hub contact.
    NodeRejoined {
        /// The node.
        node: u32,
    },
    /// The hub planned a failover placement for a displaced component.
    MigrationPlanned {
        /// The component.
        component: String,
        /// The node it was displaced from.
        from: u32,
        /// The target node.
        to: u32,
        /// The placement epoch (stale acks are ignored).
        epoch: u64,
    },
    /// A failover placement was admitted on its target node.
    MigrationAdmitted {
        /// The component.
        component: String,
        /// The target node.
        node: u32,
        /// The placement epoch.
        epoch: u64,
    },
    /// A failover placement was rejected by the target node's admission.
    MigrationRejected {
        /// The component.
        component: String,
        /// The target node.
        node: u32,
        /// The admission rejection reason.
        reason: String,
    },
    /// The failover supervisor granted a placement retry after backoff.
    FailoverRetryScheduled {
        /// The component.
        component: String,
        /// 1-based attempt number.
        attempt: u32,
        /// Federation ticks before the retry.
        delay_ticks: u64,
    },
    /// The failover supervisor exhausted the retry budget (or tripped its
    /// flap window): the component stays out with typed evidence.
    FailoverQuarantined {
        /// The component.
        component: String,
        /// Why.
        reason: String,
    },
    /// A degraded node admitted an arrival through its own local
    /// resolver instead of the hub.
    LocalAdmission {
        /// The node.
        node: u32,
        /// The component.
        component: String,
        /// The local admission verdict.
        admitted: bool,
    },
    /// Post-heal reconciliation retired a component copy the hub had
    /// re-placed elsewhere while the node was partitioned (hub wins).
    ReconcileRetired {
        /// The node retiring its copy.
        node: u32,
        /// The component.
        component: String,
    },
    /// A bridge message transmission was lost.
    MessageDropped {
        /// Sender.
        from: FedEndpoint,
        /// Receiver.
        to: FedEndpoint,
        /// Link-level sequence number.
        seq: u64,
    },
    /// An unacked bridge message was retransmitted.
    MessageRetried {
        /// Sender.
        from: FedEndpoint,
        /// Receiver.
        to: FedEndpoint,
        /// Link-level sequence number.
        seq: u64,
        /// 1-based transmission attempt.
        attempt: u32,
    },
    /// The bounded retry budget for a bridge message ran out.
    MessageExpired {
        /// Sender.
        from: FedEndpoint,
        /// Receiver.
        to: FedEndpoint,
        /// Link-level sequence number.
        seq: u64,
    },
}

impl fmt::Display for FedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedEvent::NodeSuspected { node, missed } => {
                write!(f, "node {node} suspected ({missed} heartbeats missed)")
            }
            FedEvent::NodeFailed { node, missed } => {
                write!(f, "node {node} failed ({missed} heartbeats missed)")
            }
            FedEvent::NodeCrashed { node } => write!(f, "node {node} crashed"),
            FedEvent::PartitionStarted { isolated } => {
                let ids: Vec<String> = isolated.iter().map(u32::to_string).collect();
                write!(
                    f,
                    "partition started: nodes {{{}}} isolated",
                    ids.join(", ")
                )
            }
            FedEvent::PartitionHealed => write!(f, "partition healed"),
            FedEvent::NodeDegraded { node, since_ticks } => {
                write!(
                    f,
                    "node {node} degraded to local admission ({since_ticks} ticks without hub)"
                )
            }
            FedEvent::NodeRejoined { node } => write!(f, "node {node} rejoined"),
            FedEvent::MigrationPlanned {
                component,
                from,
                to,
                epoch,
            } => write!(
                f,
                "migration of `{component}` planned: node {from} -> node {to} (epoch {epoch})"
            ),
            FedEvent::MigrationAdmitted {
                component,
                node,
                epoch,
            } => write!(
                f,
                "`{component}` re-admitted on node {node} (epoch {epoch})"
            ),
            FedEvent::MigrationRejected {
                component,
                node,
                reason,
            } => write!(
                f,
                "`{component}` rejected by node {node} admission: {reason}"
            ),
            FedEvent::FailoverRetryScheduled {
                component,
                attempt,
                delay_ticks,
            } => write!(
                f,
                "failover retry #{attempt} of `{component}` in {delay_ticks} ticks"
            ),
            FedEvent::FailoverQuarantined { component, reason } => {
                write!(f, "failover of `{component}` quarantined: {reason}")
            }
            FedEvent::LocalAdmission {
                node,
                component,
                admitted,
            } => {
                let verdict = if *admitted { "admitted" } else { "rejected" };
                write!(f, "node {node} locally {verdict} `{component}`")
            }
            FedEvent::ReconcileRetired { node, component } => {
                write!(f, "node {node} retired `{component}` on reconcile")
            }
            FedEvent::MessageDropped { from, to, seq } => {
                write!(f, "message {from} -> {to} #{seq} dropped")
            }
            FedEvent::MessageRetried {
                from,
                to,
                seq,
                attempt,
            } => write!(
                f,
                "message {from} -> {to} #{seq} retried (attempt {attempt})"
            ),
            FedEvent::MessageExpired { from, to, seq } => {
                write!(f, "message {from} -> {to} #{seq} gave up")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// A fixed-bucket histogram over `u64` samples (typically nanoseconds).
///
/// Bucket bounds are upper-inclusive; samples above the last bound land in
/// an implicit overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Exponential nanosecond bounds from 1 µs to 1 s — the default shape
    /// for latency histograms.
    pub fn latency_ns() -> Self {
        Histogram::new(&[
            1_000,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
            1_000_000_000,
        ])
    }

    /// Small-count bounds (1..64) for width/depth style histograms.
    pub fn small_counts() -> Self {
        Histogram::new(&[1, 2, 4, 8, 16, 32, 64])
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, count)` pairs; the final pair is the overflow bucket
    /// with bound `u64::MAX`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }
}

/// Named counters, gauges and histograms. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge to the latest value.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into a histogram, creating it with `make` on first
    /// use.
    pub fn observe(&mut self, name: &str, value: u64, make: impl FnOnce() -> Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(make)
            .record(value);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A deterministic snapshot (all series in lexicographic name order).
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time snapshot of a [`MetricsRegistry`], ordered and
/// renderable. Two snapshots of identical registries render byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsReport {
    /// The counters, name-ordered.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// The gauges, name-ordered.
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// The histograms, name-ordered.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Human-readable rendering: one aligned line per series.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v:.6}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} min={} max={} mean={:.1}\n",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean(),
            ));
        }
        out
    }

    /// Machine-readable rendering: one JSON object per line
    /// (`{"kind":"counter",...}` / `"gauge"` / `"histogram"`).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n",
                json_escape(name)
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{v:.6}}}\n",
                json_escape(name)
            ));
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h
                .buckets()
                .map(|(le, count)| {
                    if le == u64::MAX {
                        format!("{{\"le\":\"inf\",\"count\":{count}}}")
                    } else {
                        format!("{{\"le\":{le},\"count\":{count}}}")
                    }
                })
                .collect();
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}\n",
                json_escape(name),
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                buckets.join(","),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 99, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(5000));
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        // 5 and 10 land in <=10; 11 and 99 in <=100; 5000 overflows.
        assert_eq!(buckets, vec![(10, 2), (100, 2), (1000, 0), (u64::MAX, 1)]);
    }

    #[test]
    fn registry_snapshot_is_deterministic() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.count("b.second", 2);
            m.count("a.first", 1);
            m.gauge("util", 0.25);
            m.observe("lat", 500, Histogram::latency_ns);
            m.observe("lat", 2_000_000, Histogram::latency_ns);
            m
        };
        let (r1, r2) = (build().snapshot(), build().snapshot());
        assert_eq!(r1, r2);
        assert_eq!(r1.to_text(), r2.to_text());
        assert_eq!(r1.to_json_lines(), r2.to_json_lines());
        // Name order is lexicographic regardless of insertion order.
        assert_eq!(r1.counters()[0].0, "a.first");
    }

    #[test]
    fn json_lines_shape() {
        let mut m = MetricsRegistry::new();
        m.count("x", 3);
        m.gauge("g", 1.5);
        m.observe("h", 7, || Histogram::new(&[10]));
        let json = m.snapshot().to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"name\":\"x\",\"value\":3}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"gauge\",\"name\":\"g\",\"value\":1.500000}"
        );
        assert!(
            lines[2].contains("\"buckets\":[{\"le\":10,\"count\":1},{\"le\":\"inf\",\"count\":0}]")
        );
    }

    #[test]
    fn event_display_matches_legacy_decision_lines() {
        let e = DrcrEvent::AdmissionVerdict {
            component: "calc".into(),
            resolver: "utilization".into(),
            internal: true,
            admitted: false,
            reason: "cap exceeded".into(),
        };
        assert_eq!(
            e.to_string(),
            "`calc` rejected by internal resolver (utilization): cap exceeded"
        );
        let e = DrcrEvent::CascadeDeactivation {
            component: "disp".into(),
            reason: "inport latdat unbound".into(),
        };
        assert_eq!(
            e.to_string(),
            "cascade: deactivating `disp`: inport latdat unbound"
        );
        let e = DrcrEvent::Activated {
            component: "calc".into(),
        };
        assert_eq!(e.to_string(), "activated `calc`");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
