//! The declarative real-time component lifecycle (the paper's Figure 1).
//!
//! A DRCom's lifecycle is a *sub-lifecycle* of its OSGi bundle: once the
//! bundle is active and carries a valid descriptor, the DRCR takes over and
//! drives the component through these states:
//!
//! ```text
//!                    enable            constraints satisfied + admitted
//!   Installed ──► Unsatisfied ────────────────► Active ◄──┐
//!       │   ▲         ▲  ▲                        │  │    │ resume
//!       │   │ disable │  │ dependency lost /      │  └── Suspended
//!       ▼   │         │  │ admission revoked      │ suspend
//!   Disabled ◄────────┘  └────────────────────────┘
//!       │                                         │
//!       └────────────► Destroyed ◄────────────────┘  (bundle stopped)
//! ```
//!
//! * **Installed** — descriptor parsed and registered with the DRCR.
//! * **Disabled** — deployed with `enabled="false"` (or disabled by a
//!   manager); the DRCR ignores it during resolution.
//! * **Unsatisfied** — waiting for functional (port wiring) or
//!   non-functional (admission) constraints.
//! * **Active** — RT task created and released; contracts guaranteed.
//! * **Suspended** — RT task parked by management action, resources still
//!   reserved (a suspended component keeps its admission so resuming can
//!   never fail).
//! * **Destroyed** — removed; terminal.
//!
//! Every transition the DRCR performs is checked against this table, which
//! is what makes the executive's global view trustworthy: a component can
//! never reach a state the model does not allow.

use std::fmt;

/// Lifecycle state of a declarative real-time component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentState {
    /// Registered with the DRCR, not yet considered for resolution.
    Installed,
    /// Excluded from resolution until enabled.
    Disabled,
    /// Waiting for constraints (functional or non-functional).
    Unsatisfied,
    /// Running with guaranteed contracts.
    Active,
    /// Parked by management action; admission retained.
    Suspended,
    /// Removed. Terminal.
    Destroyed,
}

impl fmt::Display for ComponentState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentState::Installed => "INSTALLED",
            ComponentState::Disabled => "DISABLED",
            ComponentState::Unsatisfied => "UNSATISFIED",
            ComponentState::Active => "ACTIVE",
            ComponentState::Suspended => "SUSPENDED",
            ComponentState::Destroyed => "DESTROYED",
        };
        f.write_str(s)
    }
}

impl ComponentState {
    /// All states, for exhaustive tests.
    pub const ALL: [ComponentState; 6] = [
        ComponentState::Installed,
        ComponentState::Disabled,
        ComponentState::Unsatisfied,
        ComponentState::Active,
        ComponentState::Suspended,
        ComponentState::Destroyed,
    ];

    /// True when the transition `self → to` is legal per Figure 1.
    pub fn can_transition(self, to: ComponentState) -> bool {
        use ComponentState::*;
        matches!(
            (self, to),
            // Initial routing after registration.
            (Installed, Unsatisfied)   // enabled descriptor
                | (Installed, Disabled) // enabled="false"
                | (Installed, Destroyed)
                // Enable / disable.
                | (Disabled, Unsatisfied)
                | (Unsatisfied, Disabled)
                | (Disabled, Destroyed)
                // Resolution outcomes.
                | (Unsatisfied, Active)
                | (Unsatisfied, Destroyed)
                // Run-time changes.
                | (Active, Unsatisfied)  // dependency lost / admission revoked
                | (Active, Suspended)
                | (Active, Disabled)     // manager disables a running component
                | (Active, Destroyed)
                | (Suspended, Active)
                | (Suspended, Unsatisfied) // dependency lost while parked
                | (Suspended, Disabled)
                | (Suspended, Destroyed)
        )
    }

    /// True when the component holds an admission reservation in this state.
    pub fn holds_admission(self) -> bool {
        matches!(self, ComponentState::Active | ComponentState::Suspended)
    }

    /// True when the component's outports feed the wiring graph in this
    /// state (only running components satisfy their consumers).
    pub fn provides_outputs(self) -> bool {
        self == ComponentState::Active
    }

    /// True when no further transitions are possible.
    pub fn is_terminal(self) -> bool {
        self == ComponentState::Destroyed
    }
}

/// A recorded lifecycle transition, for the DRCR decision log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// The component name.
    pub component: String,
    /// State before.
    pub from: ComponentState,
    /// State after.
    pub to: ComponentState,
    /// Why the DRCR performed it.
    pub reason: String,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({})",
            self.component, self.from, self.to, self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ComponentState::*;

    #[test]
    fn happy_path_is_legal() {
        assert!(Installed.can_transition(Unsatisfied));
        assert!(Unsatisfied.can_transition(Active));
        assert!(Active.can_transition(Suspended));
        assert!(Suspended.can_transition(Active));
        assert!(Active.can_transition(Destroyed));
    }

    #[test]
    fn dependency_loss_paths() {
        assert!(Active.can_transition(Unsatisfied));
        assert!(Suspended.can_transition(Unsatisfied));
        assert!(Unsatisfied.can_transition(Active));
    }

    #[test]
    fn disable_enable_paths() {
        assert!(Installed.can_transition(Disabled));
        assert!(Disabled.can_transition(Unsatisfied));
        assert!(Active.can_transition(Disabled));
        assert!(Unsatisfied.can_transition(Disabled));
        assert!(!Disabled.can_transition(Active), "must re-resolve first");
    }

    #[test]
    fn destroyed_is_terminal() {
        for s in ComponentState::ALL {
            assert!(!Destroyed.can_transition(s), "{s}");
        }
        for s in ComponentState::ALL {
            if s != Destroyed {
                assert!(s.can_transition(Destroyed), "{s} must be destroyable");
            }
        }
    }

    #[test]
    fn no_self_transitions() {
        for s in ComponentState::ALL {
            assert!(!s.can_transition(s), "{s}");
        }
    }

    #[test]
    fn activation_requires_resolution() {
        // Nothing may jump straight to Active except Unsatisfied (resolution)
        // and Suspended (resume).
        for s in ComponentState::ALL {
            let expected = matches!(s, Unsatisfied | Suspended);
            assert_eq!(s.can_transition(Active), expected, "{s}");
        }
    }

    #[test]
    fn admission_held_exactly_when_running_or_parked() {
        assert!(Active.holds_admission());
        assert!(Suspended.holds_admission());
        for s in [Installed, Disabled, Unsatisfied, Destroyed] {
            assert!(!s.holds_admission(), "{s}");
        }
    }

    #[test]
    fn only_active_provides_outputs() {
        for s in ComponentState::ALL {
            assert_eq!(s.provides_outputs(), s == Active, "{s}");
        }
    }

    #[test]
    fn installed_routes_only_to_enablement_states() {
        for s in ComponentState::ALL {
            let expected = matches!(s, Unsatisfied | Disabled | Destroyed);
            assert_eq!(Installed.can_transition(s), expected, "{s}");
        }
    }

    #[test]
    fn transition_displays_readably() {
        let t = Transition {
            component: "disp".into(),
            from: Active,
            to: Unsatisfied,
            reason: "provider `calc` stopped".into(),
        };
        assert_eq!(
            t.to_string(),
            "disp: ACTIVE -> UNSATISFIED (provider `calc` stopped)"
        );
    }
}
