//! Architecture description: assemblies of components with explicit,
//! validated connections.
//!
//! The paper's future work calls for "integrat\[ing\] certain Architecture
//! Description Language into our DRCom", because port wiring by bare
//! channel-name equality cannot express or check an *intended*
//! architecture. An [`Assembly`] is that missing layer: it names a set of
//! member components and declares every connection between them, and
//! [`Assembly::validate`] checks the declaration against the members'
//! descriptors **before deployment**:
//!
//! * every connection endpoint exists and has the right direction,
//! * connected ports are shape-compatible (name/interface/type/size),
//! * every member inport is either connected within the assembly or
//!   explicitly declared `external` (fed by components outside the
//!   assembly) — silent dangling dependencies are rejected.
//!
//! A validated assembly deploys **atomically**: each member becomes one
//! bundle; on any installation failure the already-installed members are
//! rolled back. Undeploy removes all member bundles (the DRCR cascades as
//! usual).

use crate::descriptor::ComponentDescriptor;
use crate::drcr::ComponentProvider;
use crate::runtime::DrtRuntime;
use osgi::event::BundleId;
use osgi::framework::FrameworkError;
use std::collections::BTreeMap;
use std::fmt;

/// One declared connection: `from` component's outport feeds `to`
/// component's inport. Both ports necessarily share the channel name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Providing member component.
    pub from: String,
    /// Outport (= channel) name.
    pub port: String,
    /// Consuming member component.
    pub to: String,
}

impl fmt::Display for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} -> {}.{}",
            self.from, self.port, self.to, self.port
        )
    }
}

/// An architecture validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdlError {
    /// A connection references a member that does not exist.
    UnknownComponent {
        /// The offending connection, rendered.
        connection: String,
        /// The missing member name.
        component: String,
    },
    /// A connection references a port its endpoint does not declare.
    UnknownPort {
        /// The offending connection, rendered.
        connection: String,
        /// The member lacking the port.
        component: String,
        /// The missing port name.
        port: String,
        /// Whether an outport (`true`) or inport was required.
        needs_outport: bool,
    },
    /// Connected ports disagree on interface/type/size.
    IncompatibleConnection {
        /// The offending connection, rendered.
        connection: String,
        /// Human-readable shape difference.
        detail: String,
    },
    /// A member inport is neither connected nor declared external.
    UnboundInport {
        /// The consuming member.
        component: String,
        /// The dangling inport.
        port: String,
    },
    /// Two members share a name.
    DuplicateMember(String),
    /// An `external` declaration names a port no member imports.
    UselessExternal(String),
}

impl fmt::Display for AdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdlError::UnknownComponent {
                connection,
                component,
            } => write!(f, "{connection}: no member named `{component}`"),
            AdlError::UnknownPort {
                connection,
                component,
                port,
                needs_outport,
            } => write!(
                f,
                "{connection}: member `{component}` has no {} named `{port}`",
                if *needs_outport { "outport" } else { "inport" }
            ),
            AdlError::IncompatibleConnection { connection, detail } => {
                write!(f, "{connection}: incompatible ports ({detail})")
            }
            AdlError::UnboundInport { component, port } => write!(
                f,
                "member `{component}` inport `{port}` is neither connected nor declared external"
            ),
            AdlError::DuplicateMember(name) => write!(f, "duplicate member `{name}`"),
            AdlError::UselessExternal(port) => {
                write!(f, "external declaration `{port}` matches no member inport")
            }
        }
    }
}

impl std::error::Error for AdlError {}

/// A deployable, validated set of components. See the [module docs](self).
///
/// ```
/// use drcom::adl::Assembly;
/// use drcom::drcr::ComponentProvider;
/// use drcom::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = ComponentDescriptor::builder("src")
///     .periodic(100, 0, 2)
///     .cpu_usage(0.1)
///     .outport("chan", PortInterface::Shm, DataType::Integer, 1)
///     .build()?;
/// let snk = ComponentDescriptor::builder("snk")
///     .periodic(10, 0, 4)
///     .cpu_usage(0.05)
///     .inport("chan", PortInterface::Shm, DataType::Integer, 1)
///     .build()?;
/// let noop = || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})) as Box<dyn RtLogic>;
/// let assembly = Assembly::new("pipe")
///     .member(ComponentProvider::new(src, noop))
///     .member(ComponentProvider::new(snk, noop))
///     .connect("src", "chan", "snk");
/// assembly.validate().map_err(|e| format!("{e:?}"))?;
/// # Ok(())
/// # }
/// ```
pub struct Assembly {
    name: String,
    members: Vec<(String, ComponentProvider)>,
    connections: Vec<Connection>,
    externals: Vec<String>,
}

impl fmt::Debug for Assembly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Assembly")
            .field("name", &self.name)
            .field("members", &self.members.len())
            .field("connections", &self.connections)
            .finish()
    }
}

impl Assembly {
    /// Starts an empty assembly named `name`.
    pub fn new(name: &str) -> Self {
        Assembly {
            name: name.to_string(),
            members: Vec::new(),
            connections: Vec::new(),
            externals: Vec::new(),
        }
    }

    /// The assembly name (used as the bundle-name prefix).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a member component.
    pub fn member(mut self, provider: ComponentProvider) -> Self {
        let name = provider.descriptor().name.to_string();
        self.members.push((name, provider));
        self
    }

    /// Declares that `from`'s outport `port` feeds `to`'s inport of the
    /// same name.
    pub fn connect(mut self, from: &str, port: &str, to: &str) -> Self {
        self.connections.push(Connection {
            from: from.to_string(),
            port: port.to_string(),
            to: to.to_string(),
        });
        self
    }

    /// Declares that inports on channel `port` are fed from outside the
    /// assembly.
    pub fn external(mut self, port: &str) -> Self {
        self.externals.push(port.to_string());
        self
    }

    /// Parses the assembly *structure* (connections and externals) from an
    /// application descriptor, pairing it with the member providers:
    ///
    /// ```xml
    /// <drt:application name="plant">
    ///   <connection from="sensor" port="meas" to="pid"/>
    ///   <external port="act"/>
    /// </drt:application>
    /// ```
    ///
    /// Members arrive as code (providers); the XML carries the declared
    /// architecture, validated against them by [`Assembly::validate`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem.
    pub fn from_xml(xml: &str, members: Vec<ComponentProvider>) -> Result<Self, String> {
        let root = crate::xml::parse(xml).map_err(|e| e.to_string())?;
        if root.local_name() != "application" {
            return Err(format!(
                "root element must be `application`, found `{}`",
                root.name
            ));
        }
        let name = root
            .attr("name")
            .ok_or_else(|| "application needs a `name`".to_string())?;
        let mut assembly = Assembly::new(name);
        for provider in members {
            assembly = assembly.member(provider);
        }
        for conn in root.children_named("connection") {
            let from = conn
                .attr("from")
                .ok_or_else(|| "`connection` needs `from`".to_string())?;
            let port = conn
                .attr("port")
                .ok_or_else(|| "`connection` needs `port`".to_string())?;
            let to = conn
                .attr("to")
                .ok_or_else(|| "`connection` needs `to`".to_string())?;
            assembly = assembly.connect(from, port, to);
        }
        for ext in root.children_named("external") {
            let port = ext
                .attr("port")
                .ok_or_else(|| "`external` needs `port`".to_string())?;
            assembly = assembly.external(port);
        }
        Ok(assembly)
    }

    /// Checks the declared architecture against the members' descriptors.
    ///
    /// # Errors
    ///
    /// All problems found, not just the first.
    pub fn validate(&self) -> Result<(), Vec<AdlError>> {
        let mut errors = Vec::new();
        let mut by_name: BTreeMap<&str, &ComponentDescriptor> = BTreeMap::new();
        for (name, provider) in &self.members {
            if by_name
                .insert(name.as_str(), provider.descriptor())
                .is_some()
            {
                errors.push(AdlError::DuplicateMember(name.clone()));
            }
        }
        // Connections reference real, compatible ports.
        for c in &self.connections {
            let rendered = c.to_string();
            let from = match by_name.get(c.from.as_str()) {
                Some(d) => Some(*d),
                None => {
                    errors.push(AdlError::UnknownComponent {
                        connection: rendered.clone(),
                        component: c.from.clone(),
                    });
                    None
                }
            };
            let to = match by_name.get(c.to.as_str()) {
                Some(d) => Some(*d),
                None => {
                    errors.push(AdlError::UnknownComponent {
                        connection: rendered.clone(),
                        component: c.to.clone(),
                    });
                    None
                }
            };
            let out_port = from.and_then(|d| {
                let p = d.outports.iter().find(|p| p.name.as_str() == c.port);
                if p.is_none() {
                    errors.push(AdlError::UnknownPort {
                        connection: rendered.clone(),
                        component: c.from.clone(),
                        port: c.port.clone(),
                        needs_outport: true,
                    });
                }
                p
            });
            let in_port = to.and_then(|d| {
                let p = d.inports.iter().find(|p| p.name.as_str() == c.port);
                if p.is_none() {
                    errors.push(AdlError::UnknownPort {
                        connection: rendered.clone(),
                        component: c.to.clone(),
                        port: c.port.clone(),
                        needs_outport: false,
                    });
                }
                p
            });
            if let (Some(o), Some(i)) = (out_port, in_port) {
                if !o.compatible_with(i) {
                    errors.push(AdlError::IncompatibleConnection {
                        connection: rendered,
                        detail: format!(
                            "provider {} x{} over {}, consumer {} x{} over {}",
                            o.data_type, o.size, o.interface, i.data_type, i.size, i.interface
                        ),
                    });
                }
            }
        }
        // Completeness: every inport is connected or external.
        for (name, provider) in &self.members {
            for inport in &provider.descriptor().inports {
                let connected = self
                    .connections
                    .iter()
                    .any(|c| c.to == *name && c.port == inport.name.as_str());
                let external = self.externals.iter().any(|e| e == inport.name.as_str());
                if !connected && !external {
                    errors.push(AdlError::UnboundInport {
                        component: name.clone(),
                        port: inport.name.to_string(),
                    });
                }
            }
        }
        // Externals must be meaningful.
        for e in &self.externals {
            let used = self
                .members
                .iter()
                .any(|(_, p)| p.descriptor().inports.iter().any(|i| i.name.as_str() == *e));
            if !used {
                errors.push(AdlError::UselessExternal(e.clone()));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Validates, then deploys every member as its own bundle, atomically:
    /// if any installation fails, the members installed so far are rolled
    /// back (uninstalled) before returning the error.
    ///
    /// # Errors
    ///
    /// [`DeployError::Invalid`] with the validation findings, or
    /// [`DeployError::Framework`] from bundle installation.
    pub fn deploy(self, rt: &mut DrtRuntime) -> Result<DeployedAssembly, DeployError> {
        if let Err(errors) = self.validate() {
            return Err(DeployError::Invalid(errors));
        }
        let mut bundles = Vec::new();
        let assembly_name = self.name.clone();
        for (member, provider) in self.members {
            let bundle_name = format!("{assembly_name}.{member}");
            match rt.install_component(&bundle_name, provider) {
                Ok(bundle) => bundles.push((member, bundle)),
                Err(err) => {
                    for (_, installed) in bundles {
                        let _ = rt.uninstall_bundle(installed);
                    }
                    return Err(DeployError::Framework(err));
                }
            }
        }
        Ok(DeployedAssembly {
            name: assembly_name,
            bundles,
        })
    }
}

/// A deployment failure.
#[derive(Debug)]
pub enum DeployError {
    /// The architecture did not validate; nothing was installed.
    Invalid(Vec<AdlError>),
    /// A bundle failed to install; prior members were rolled back.
    Framework(FrameworkError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Invalid(errors) => {
                writeln!(f, "assembly failed validation:")?;
                for e in errors {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            DeployError::Framework(e) => write!(f, "deployment failed: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Handle to a deployed assembly's bundles.
#[derive(Debug)]
pub struct DeployedAssembly {
    name: String,
    bundles: Vec<(String, BundleId)>,
}

impl DeployedAssembly {
    /// The assembly name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(member component, bundle)` pairs, in deployment order.
    pub fn bundles(&self) -> &[(String, BundleId)] {
        &self.bundles
    }

    /// The bundle deploying a given member.
    pub fn bundle_of(&self, member: &str) -> Option<BundleId> {
        self.bundles
            .iter()
            .find(|(m, _)| m == member)
            .map(|(_, b)| *b)
    }

    /// Uninstalls every member bundle (reverse order); the DRCR cascades.
    ///
    /// # Errors
    ///
    /// The first framework error, after attempting all members.
    pub fn undeploy(self, rt: &mut DrtRuntime) -> Result<(), FrameworkError> {
        let mut first_err = None;
        for (_, bundle) in self.bundles.into_iter().rev() {
            if let Err(e) = rt.uninstall_bundle(bundle) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::{FnLogic, RtIo};
    use crate::lifecycle::ComponentState;
    use crate::model::PortInterface;
    use rtos::kernel::KernelConfig;
    use rtos::latency::TimerJitterModel;
    use rtos::shm::DataType;

    fn noop() -> Box<dyn crate::hybrid::RtLogic> {
        Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
    }

    fn source(name: &str, chan: &str) -> ComponentProvider {
        let d = ComponentDescriptor::builder(name)
            .periodic(100, 0, 2)
            .cpu_usage(0.05)
            .outport(chan, PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, noop)
    }

    fn sink(name: &str, chan: &str) -> ComponentProvider {
        let d = ComponentDescriptor::builder(name)
            .periodic(10, 0, 4)
            .cpu_usage(0.02)
            .inport(chan, PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, noop)
    }

    #[test]
    fn valid_assembly_deploys_atomically() {
        let mut rt = DrtRuntime::new(KernelConfig::new(5).with_timer(TimerJitterModel::ideal()));
        let assembly = Assembly::new("pipeline")
            .member(source("src", "chan"))
            .member(sink("snk", "chan"))
            .connect("src", "chan", "snk");
        assembly.validate().unwrap();
        let assembly = Assembly::new("pipeline")
            .member(source("src", "chan"))
            .member(sink("snk", "chan"))
            .connect("src", "chan", "snk");
        let deployed = assembly.deploy(&mut rt).unwrap();
        assert_eq!(rt.component_state("src"), Some(ComponentState::Active));
        assert_eq!(rt.component_state("snk"), Some(ComponentState::Active));
        assert_eq!(deployed.bundles().len(), 2);
        assert!(deployed.bundle_of("src").is_some());
        deployed.undeploy(&mut rt).unwrap();
        assert_eq!(rt.component_state("src"), None);
        assert_eq!(rt.component_state("snk"), None);
        assert!(rt.drcr().ledger().is_empty());
    }

    #[test]
    fn unbound_inport_is_rejected() {
        let assembly = Assembly::new("broken").member(sink("snk", "chan"));
        let errors = assembly.validate().unwrap_err();
        assert!(matches!(errors[0], AdlError::UnboundInport { .. }));
        // But declaring it external passes.
        let assembly = Assembly::new("ok")
            .member(sink("snk", "chan"))
            .external("chan");
        assembly.validate().unwrap();
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let assembly = Assembly::new("broken")
            .member(source("src", "chan"))
            .member(sink("snk", "chan"))
            .connect("ghost", "chan", "snk")
            .connect("src", "nope", "snk");
        let errors = assembly.validate().unwrap_err();
        assert!(errors.iter().any(
            |e| matches!(e, AdlError::UnknownComponent { component, .. } if component == "ghost")
        ));
        assert!(errors
            .iter()
            .any(|e| matches!(e, AdlError::UnknownPort { port, .. } if port == "nope")));
    }

    #[test]
    fn incompatible_shapes_are_rejected() {
        let fat_sink = {
            let d = ComponentDescriptor::builder("snk")
                .periodic(10, 0, 4)
                .cpu_usage(0.02)
                .inport("chan", PortInterface::Shm, DataType::Integer, 99)
                .build()
                .unwrap();
            ComponentProvider::new(d, noop)
        };
        let assembly = Assembly::new("broken")
            .member(source("src", "chan"))
            .member(fat_sink)
            .connect("src", "chan", "snk");
        let errors = assembly.validate().unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, AdlError::IncompatibleConnection { .. })));
    }

    #[test]
    fn duplicate_members_and_useless_externals() {
        let assembly = Assembly::new("broken")
            .member(source("src", "chan"))
            .member(source("src", "chan2"))
            .external("ghost");
        let errors = assembly.validate().unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, AdlError::DuplicateMember(_))));
        assert!(errors
            .iter()
            .any(|e| matches!(e, AdlError::UselessExternal(_))));
    }

    #[test]
    fn failed_deploy_rolls_back() {
        let mut rt = DrtRuntime::new(KernelConfig::new(6).with_timer(TimerJitterModel::ideal()));
        // Occupy the bundle name the second member will want.
        rt.framework_mut()
            .install(
                osgi::manifest::BundleManifest::new(
                    "roll.snk",
                    osgi::version::Version::new(1, 0, 0),
                ),
                Box::new(osgi::framework::NoopActivator),
            )
            .unwrap();
        let assembly = Assembly::new("roll")
            .member(source("src", "chan"))
            .member(sink("snk", "chan"))
            .connect("src", "chan", "snk");
        let err = assembly.deploy(&mut rt).unwrap_err();
        assert!(matches!(err, DeployError::Framework(_)));
        // The first member was rolled back: no components remain.
        assert_eq!(rt.component_state("src"), None);
        assert!(rt.drcr().component_names().is_empty());
    }

    #[test]
    fn assembly_structure_parses_from_xml() {
        let xml = r#"<drt:application name="pipe">
          <connection from="src" port="chan" to="snk"/>
        </drt:application>"#;
        let assembly =
            Assembly::from_xml(xml, vec![source("src", "chan"), sink("snk", "chan")]).unwrap();
        assert_eq!(assembly.name(), "pipe");
        assembly.validate().unwrap();
        // Structure referencing unknown members fails validation, not parse.
        let xml = r#"<drt:application name="pipe">
          <connection from="ghost" port="chan" to="snk"/>
        </drt:application>"#;
        let assembly = Assembly::from_xml(xml, vec![sink("snk", "chan")]).unwrap();
        assert!(assembly.validate().is_err());
        // Malformed documents fail at parse.
        assert!(Assembly::from_xml("<nope/>", vec![]).is_err());
        assert!(Assembly::from_xml("<drt:application/>", vec![]).is_err());
        assert!(Assembly::from_xml(
            r#"<drt:application name="x"><connection from="a"/></drt:application>"#,
            vec![]
        )
        .is_err());
    }

    #[test]
    fn invalid_assembly_installs_nothing() {
        let mut rt = DrtRuntime::new(KernelConfig::new(7).with_timer(TimerJitterModel::ideal()));
        let err = Assembly::new("broken")
            .member(sink("snk", "chan"))
            .deploy(&mut rt)
            .unwrap_err();
        assert!(matches!(err, DeployError::Invalid(_)));
        assert!(err
            .to_string()
            .contains("neither connected nor declared external"));
        assert!(rt.drcr().component_names().is_empty());
    }
}
