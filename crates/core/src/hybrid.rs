//! The Hybrid Real-time Component (HRC) implementation model (§3 of the
//! paper).
//!
//! An HRC is split in two: a small real-time task running on the RT kernel,
//! and a management part living in the OSGi world. The two halves meet at a
//! **strictly asynchronous** command channel (§3.2): the management side
//! posts [`Command`]s into a mailbox; the RT side drains them *at the end of
//! each functional cycle* and posts [`Reply`]s back. The RT path never
//! blocks on management traffic — "otherwise, the real-time task's
//! performance may be breached".
//!
//! Component authors implement [`RtLogic`]; [`HybridRtBody`] adapts it to
//! the kernel's task interface, wiring descriptor ports to SHM segments and
//! mailboxes and running the command pump. [`BridgeMode`] exists to
//! *quantify* the paper's design choice: the `SyncBlocking` variant models
//! the rejected synchronous design and is used by the ablation bench.

use crate::model::{PortDirection, PortInterface, PortSpec, PropertyValue};
use rtos::kernel::TaskCtx;
use rtos::task::TaskBody;
use rtos::time::{SimDuration, SimTime};
use std::fmt;

/// A management command sent from the non-RT side to the RT task.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Replace a configuration property; the RT side applies it between
    /// cycles and notifies the logic.
    SetProperty {
        /// Property name.
        name: String,
        /// New value.
        value: PropertyValue,
    },
    /// Ask for a property's current value.
    GetProperty {
        /// Correlation token echoed in the reply.
        token: u32,
        /// Property name.
        name: String,
    },
    /// Ask for task status.
    QueryStatus {
        /// Correlation token echoed in the reply.
        token: u32,
    },
    /// Liveness probe.
    Ping {
        /// Correlation token echoed in the reply.
        token: u32,
    },
}

/// A reply from the RT task to the management side.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Command::GetProperty`].
    Property {
        /// The request's token.
        token: u32,
        /// Property name.
        name: String,
        /// The value, or `None` if no such property.
        value: Option<PropertyValue>,
    },
    /// Answer to [`Command::QueryStatus`].
    Status {
        /// The request's token.
        token: u32,
        /// Completed cycles at reply time.
        cycles: u64,
        /// Virtual time of the replying cycle, in nanoseconds.
        at_ns: u64,
    },
    /// Answer to [`Command::Ping`].
    Pong {
        /// The request's token.
        token: u32,
    },
}

/// A wire-format failure when decoding commands or replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), ProtoError> {
    // The length prefix is a u16; a longer string must be rejected here, not
    // truncated — `s.len() as u16` would wrap and emit a frame whose prefix
    // disagrees with its payload.
    let len = u16::try_from(s.len()).map_err(|_| {
        ProtoError(format!(
            "string of {} bytes exceeds the {}-byte wire limit",
            s.len(),
            u16::MAX
        ))
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_value(out: &mut Vec<u8>, v: &PropertyValue) -> Result<(), ProtoError> {
    match v {
        PropertyValue::Integer(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        PropertyValue::Float(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
        }
        PropertyValue::Text(s) => {
            out.push(3);
            put_str(out, s)?;
        }
        PropertyValue::Boolean(b) => {
            out.push(4);
            out.push(u8::from(*b));
        }
    }
    Ok(())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError(format!(
                "truncated message: wanted {n} bytes at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError("non-UTF8 string".into()))
    }

    fn value(&mut self) -> Result<PropertyValue, ProtoError> {
        match self.u8()? {
            1 => Ok(PropertyValue::Integer(self.i64()?)),
            2 => Ok(PropertyValue::Float(self.f64()?)),
            3 => Ok(PropertyValue::Text(self.string()?)),
            4 => Ok(PropertyValue::Boolean(self.u8()? != 0)),
            t => Err(ProtoError(format!("unknown value tag {t}"))),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl Command {
    /// Encodes the command for the mailbox.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] when a string field exceeds the u16 length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let mut out = Vec::new();
        match self {
            Command::SetProperty { name, value } => {
                out.push(3);
                put_str(&mut out, name)?;
                put_value(&mut out, value)?;
            }
            Command::GetProperty { token, name } => {
                out.push(4);
                out.extend_from_slice(&token.to_le_bytes());
                put_str(&mut out, name)?;
            }
            Command::QueryStatus { token } => {
                out.push(5);
                out.extend_from_slice(&token.to_le_bytes());
            }
            Command::Ping { token } => {
                out.push(6);
                out.extend_from_slice(&token.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Decodes a command from the mailbox.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for unknown tags, truncation or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(buf);
        let cmd = match r.u8()? {
            3 => Command::SetProperty {
                name: r.string()?,
                value: r.value()?,
            },
            4 => Command::GetProperty {
                token: r.u32()?,
                name: r.string()?,
            },
            5 => Command::QueryStatus { token: r.u32()? },
            6 => Command::Ping { token: r.u32()? },
            t => return Err(ProtoError(format!("unknown command tag {t}"))),
        };
        r.finish()?;
        Ok(cmd)
    }
}

impl Reply {
    /// Encodes the reply for the mailbox.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] when a string field exceeds the u16 length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let mut out = Vec::new();
        match self {
            Reply::Property { token, name, value } => {
                out.push(1);
                out.extend_from_slice(&token.to_le_bytes());
                put_str(&mut out, name)?;
                match value {
                    Some(v) => {
                        out.push(1);
                        put_value(&mut out, v)?;
                    }
                    None => out.push(0),
                }
            }
            Reply::Status {
                token,
                cycles,
                at_ns,
            } => {
                out.push(2);
                out.extend_from_slice(&token.to_le_bytes());
                out.extend_from_slice(&cycles.to_le_bytes());
                out.extend_from_slice(&at_ns.to_le_bytes());
            }
            Reply::Pong { token } => {
                out.push(3);
                out.extend_from_slice(&token.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Decodes a reply from the mailbox.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for unknown tags, truncation or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(buf);
        let reply = match r.u8()? {
            1 => {
                let token = r.u32()?;
                let name = r.string()?;
                let value = match r.u8()? {
                    0 => None,
                    1 => Some(r.value()?),
                    t => return Err(ProtoError(format!("bad option tag {t}"))),
                };
                Reply::Property { token, name, value }
            }
            2 => Reply::Status {
                token: r.u32()?,
                cycles: r.u64()?,
                at_ns: r.u64()?,
            },
            3 => Reply::Pong { token: r.u32()? },
            t => return Err(ProtoError(format!("unknown reply tag {t}"))),
        };
        r.finish()?;
        Ok(reply)
    }

    /// The correlation token of this reply.
    pub fn token(&self) -> u32 {
        match self {
            Reply::Property { token, .. } | Reply::Status { token, .. } | Reply::Pong { token } => {
                *token
            }
        }
    }
}

// ---------------------------------------------------------------------
// RT-side behaviour
// ---------------------------------------------------------------------

/// The functional behaviour of a component's real-time part.
///
/// Implementations see the world through [`RtIo`]: descriptor ports, typed
/// properties, virtual time, and explicit CPU-cost charging. They must not
/// block — every operation offered is non-blocking by construction.
pub trait RtLogic {
    /// Called once before the first cycle.
    fn on_init(&mut self, _io: &mut RtIo<'_, '_>) {}

    /// Called at every release of the task.
    fn on_cycle(&mut self, io: &mut RtIo<'_, '_>);

    /// Called (between cycles) when the management side replaced a
    /// property.
    fn on_property_changed(&mut self, _name: &str, _value: &PropertyValue) {}
}

/// A cycle-only [`RtLogic`] from a closure.
pub struct FnLogic<F>(pub F);

impl<F: FnMut(&mut RtIo<'_, '_>)> RtLogic for FnLogic<F> {
    fn on_cycle(&mut self, io: &mut RtIo<'_, '_>) {
        (self.0)(io)
    }
}

/// How the RT side services the management channel — the paper's design
/// choice (async, §3.2) plus the rejected alternative for the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeMode {
    /// Drain pending commands non-blockingly at end of cycle (the paper's
    /// design).
    AsyncPoll,
    /// Block waiting for a command every cycle, up to the given timeout —
    /// the design the paper rejects; modelled by charging the timeout as
    /// CPU time whenever no command is pending.
    SyncBlocking(SimDuration),
    /// No management channel at all (pure-RTAI baseline tasks).
    Disconnected,
}

/// One port with its direction, as bound at activation.
#[derive(Debug, Clone)]
pub struct PortBinding {
    /// The port's declared shape.
    pub spec: PortSpec,
    /// Direction from this component's point of view.
    pub direction: PortDirection,
}

/// Adapter from [`RtLogic`] + descriptor metadata to the kernel's
/// [`TaskBody`]. Created by the DRCR at activation.
pub struct HybridRtBody {
    logic: Box<dyn RtLogic>,
    bindings: Vec<PortBinding>,
    properties: Vec<(String, PropertyValue)>,
    cmd_mbx: Option<String>,
    reply_mbx: Option<String>,
    bridge: BridgeMode,
}

impl fmt::Debug for HybridRtBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridRtBody")
            .field("ports", &self.bindings.len())
            .field("bridge", &self.bridge)
            .finish()
    }
}

impl HybridRtBody {
    /// Builds the RT-side body.
    pub fn new(
        logic: Box<dyn RtLogic>,
        bindings: Vec<PortBinding>,
        properties: Vec<(String, PropertyValue)>,
        cmd_mbx: Option<String>,
        reply_mbx: Option<String>,
        bridge: BridgeMode,
    ) -> Self {
        HybridRtBody {
            logic,
            bindings,
            properties,
            cmd_mbx,
            reply_mbx,
            bridge,
        }
    }

    fn pump_commands(&mut self, ctx: &mut TaskCtx<'_>) {
        let Some(cmd_mbx) = self.cmd_mbx.clone() else {
            return;
        };
        let reply_mbx = self.reply_mbx.clone();
        let mut served = 0u32;
        loop {
            let msg = match ctx.mailbox_recv(&cmd_mbx) {
                Ok(Some(m)) => m,
                Ok(None) => break,
                Err(_) => break, // channel torn down mid-flight
            };
            served += 1;
            let Ok(cmd) = Command::decode(&msg) else {
                ctx.log("dropped malformed management command");
                continue;
            };
            // Handling a command costs a little CPU beyond the mailbox op.
            ctx.compute(SimDuration::from_nanos(250));
            let reply = match cmd {
                Command::SetProperty { name, value } => {
                    match self.properties.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, slot)) => *slot = value.clone(),
                        None => self.properties.push((name.clone(), value.clone())),
                    }
                    self.logic.on_property_changed(&name, &value);
                    None
                }
                Command::GetProperty { token, name } => {
                    let value = self
                        .properties
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, v)| v.clone());
                    Some(Reply::Property { token, name, value })
                }
                Command::QueryStatus { token } => Some(Reply::Status {
                    token,
                    cycles: ctx.cycle(),
                    at_ns: ctx.now().as_nanos(),
                }),
                Command::Ping { token } => Some(Reply::Pong { token }),
            };
            if let (Some(reply), Some(rmbx)) = (reply, reply_mbx.as_deref()) {
                match reply.encode() {
                    // Non-blocking: a full reply mailbox drops the reply;
                    // the manager will re-poll.
                    Ok(bytes) => {
                        let _ = ctx.mailbox_send(rmbx, &bytes);
                    }
                    // A reply can carry an oversized descriptor-installed
                    // Text property; dropping it (manager times out) beats
                    // posting a corrupt frame.
                    Err(_) => ctx.log("dropped unencodable management reply"),
                }
            }
        }
        if let BridgeMode::SyncBlocking(timeout) = self.bridge {
            if served == 0 {
                // The rejected synchronous design: the RT task sits in a
                // blocking receive until the timeout expires.
                ctx.compute(timeout);
            }
        }
    }
}

impl TaskBody for HybridRtBody {
    fn on_start(&mut self, ctx: &mut TaskCtx<'_>) {
        let HybridRtBody {
            logic,
            bindings,
            properties,
            ..
        } = self;
        let mut io = RtIo {
            ctx,
            bindings,
            properties,
        };
        logic.on_init(&mut io);
    }

    fn on_cycle(&mut self, ctx: &mut TaskCtx<'_>) {
        // The port-table indirection the declarative container adds over a
        // hand-coded RTAI task: a few hundred nanoseconds per cycle, with
        // the cache-dependent spread real indirection has.
        ctx.compute_about(SimDuration::from_nanos(350));
        {
            let HybridRtBody {
                logic,
                bindings,
                properties,
                ..
            } = self;
            let mut io = RtIo {
                ctx,
                bindings,
                properties,
            };
            logic.on_cycle(&mut io);
        }
        // §3.2: management traffic strictly after the functional routine.
        if self.bridge != BridgeMode::Disconnected {
            self.pump_commands(ctx);
        }
    }
}

/// Port/property/time access handed to [`RtLogic`] each cycle.
pub struct RtIo<'a, 'b> {
    ctx: &'a mut TaskCtx<'b>,
    bindings: &'a [PortBinding],
    properties: &'a mut Vec<(String, PropertyValue)>,
}

impl fmt::Debug for RtIo<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtIo")
            .field("task", &self.ctx.task_name())
            .field("cycle", &self.ctx.cycle())
            .finish()
    }
}

/// A port access failure reported to the logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortError {
    /// No port with that name in that direction.
    NoSuchPort {
        /// Requested name.
        name: String,
        /// Requested direction.
        direction: PortDirection,
    },
    /// The underlying channel failed (torn down, size mismatch).
    Channel(String),
}

impl fmt::Display for PortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortError::NoSuchPort { name, direction } => {
                write!(f, "no {direction} named `{name}`")
            }
            PortError::Channel(msg) => write!(f, "port channel error: {msg}"),
        }
    }
}

impl std::error::Error for PortError {}

impl RtIo<'_, '_> {
    fn binding(&self, name: &str, direction: PortDirection) -> Result<&PortBinding, PortError> {
        self.bindings
            .iter()
            .find(|b| b.spec.name.as_str() == name && b.direction == direction)
            .ok_or_else(|| PortError::NoSuchPort {
                name: name.to_string(),
                direction,
            })
    }

    /// Reads an inport. SHM ports return the last written buffer; mailbox
    /// ports return the next queued message, or `None` when empty.
    ///
    /// # Errors
    ///
    /// [`PortError`] for unknown ports or channel failures.
    pub fn read(&mut self, port: &str) -> Result<Option<Vec<u8>>, PortError> {
        let binding = self.binding(port, PortDirection::In)?.clone();
        match binding.spec.interface {
            PortInterface::Shm => self
                .ctx
                .shm_read(binding.spec.name.as_str())
                .map(Some)
                .map_err(|e| PortError::Channel(e.to_string())),
            PortInterface::Mailbox => self
                .ctx
                .mailbox_recv(binding.spec.name.as_str())
                .map_err(|e| PortError::Channel(e.to_string())),
            PortInterface::Fifo => self
                .ctx
                .fifo_get(binding.spec.name.as_str(), binding.spec.byte_len())
                .map(|bytes| if bytes.is_empty() { None } else { Some(bytes) })
                .map_err(|e| PortError::Channel(e.to_string())),
        }
    }

    /// Writes an outport. SHM ports overwrite the segment (buffer must be
    /// exactly the declared size); mailbox ports enqueue, returning `false`
    /// without blocking when the box is full.
    ///
    /// # Errors
    ///
    /// [`PortError`] for unknown ports or channel failures.
    pub fn write(&mut self, port: &str, data: &[u8]) -> Result<bool, PortError> {
        let binding = self.binding(port, PortDirection::Out)?.clone();
        match binding.spec.interface {
            PortInterface::Shm => self
                .ctx
                .shm_write(binding.spec.name.as_str(), data)
                .map(|()| true)
                .map_err(|e| PortError::Channel(e.to_string())),
            PortInterface::Mailbox => self
                .ctx
                .mailbox_send(binding.spec.name.as_str(), data)
                .map_err(|e| PortError::Channel(e.to_string())),
            PortInterface::Fifo => self
                .ctx
                .fifo_put(binding.spec.name.as_str(), data)
                .map(|taken| taken == data.len())
                .map_err(|e| PortError::Channel(e.to_string())),
        }
    }

    /// Charges CPU time for computation.
    pub fn compute(&mut self, span: SimDuration) {
        self.ctx.compute(span);
    }

    /// Charges a randomized computation around `mean`.
    pub fn compute_about(&mut self, mean: SimDuration) {
        self.ctx.compute_about(mean);
    }

    /// Virtual time at dispatch.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Zero-based cycle index.
    pub fn cycle(&self) -> u64 {
        self.ctx.cycle()
    }

    /// The current value of a configuration property.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Appends a line to the kernel trace.
    pub fn log(&mut self, message: impl Into<String>) {
        self.ctx.log(message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrips() {
        let cmds = vec![
            Command::SetProperty {
                name: "gain".into(),
                value: PropertyValue::Float(1.5),
            },
            Command::GetProperty {
                token: 7,
                name: "gain".into(),
            },
            Command::QueryStatus { token: 8 },
            Command::Ping { token: 9 },
            Command::SetProperty {
                name: "label".into(),
                value: PropertyValue::Text("héllo".into()),
            },
            Command::SetProperty {
                name: "on".into(),
                value: PropertyValue::Boolean(true),
            },
            Command::SetProperty {
                name: "n".into(),
                value: PropertyValue::Integer(-42),
            },
        ];
        for cmd in cmds {
            let bytes = cmd.encode().unwrap();
            assert_eq!(Command::decode(&bytes).unwrap(), cmd);
        }
    }

    #[test]
    fn reply_roundtrips() {
        let replies = vec![
            Reply::Property {
                token: 1,
                name: "gain".into(),
                value: Some(PropertyValue::Float(1.5)),
            },
            Reply::Property {
                token: 2,
                name: "missing".into(),
                value: None,
            },
            Reply::Status {
                token: 3,
                cycles: 12345,
                at_ns: 999,
            },
            Reply::Pong { token: 4 },
        ];
        for reply in replies {
            let bytes = reply.encode().unwrap();
            let decoded = Reply::decode(&bytes).unwrap();
            assert_eq!(decoded, reply);
            assert_eq!(decoded.token(), reply.token());
        }
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(Command::decode(&[]).is_err());
        assert!(Command::decode(&[99]).is_err());
        assert!(Command::decode(&[5, 1]).is_err()); // truncated token
        let mut ok = Command::Ping { token: 1 }.encode().unwrap();
        ok.push(0); // trailing byte
        assert!(Command::decode(&ok).is_err());
        assert!(Reply::decode(&[77]).is_err());
        // Bad value tag inside SetProperty.
        let mut bad = vec![3];
        put_str(&mut bad, "x").unwrap();
        bad.push(9);
        assert!(Command::decode(&bad).is_err());
    }

    #[test]
    fn oversized_strings_rejected_at_encode() {
        // 65535 bytes is the largest encodable string; 65536 must fail
        // rather than wrap the u16 length prefix to 0.
        let at_limit = "x".repeat(usize::from(u16::MAX));
        let over = "x".repeat(usize::from(u16::MAX) + 1);

        let cmd = Command::GetProperty {
            token: 1,
            name: at_limit.clone(),
        };
        let bytes = cmd.encode().unwrap();
        assert_eq!(Command::decode(&bytes).unwrap(), cmd);

        let cmd = Command::GetProperty {
            token: 1,
            name: over.clone(),
        };
        assert!(cmd.encode().is_err());

        // Oversized payloads nested inside a value are caught too.
        let cmd = Command::SetProperty {
            name: "blob".into(),
            value: PropertyValue::Text(over.clone()),
        };
        let err = cmd.encode().unwrap_err();
        assert!(err.to_string().contains("65536"), "{err}");

        let reply = Reply::Property {
            token: 2,
            name: "blob".into(),
            value: Some(PropertyValue::Text(at_limit)),
        };
        let bytes = reply.encode().unwrap();
        assert_eq!(Reply::decode(&bytes).unwrap(), reply);

        let reply = Reply::Property {
            token: 2,
            name: over,
            value: None,
        };
        assert!(reply.encode().is_err());
    }

    #[test]
    fn non_utf8_strings_rejected() {
        let mut bad = vec![4, 0, 0, 0, 0]; // GetProperty, token 0
        bad.extend_from_slice(&2u16.to_le_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(Command::decode(&bad).is_err());
    }
}
