//! Response-time analysis (RTA): exact fixed-priority admission.
//!
//! The paper (§2.2) requires that "the resource budget should be enforced by
//! a central scheme", and §2.3 makes the admission *policy* pluggable via
//! customized resolving services. The built-in
//! [`UtilizationResolver`](crate::resolve::UtilizationResolver) is such a
//! policy, but a bare per-CPU utilization cap is the wrong shape for
//! fixed-priority scheduling: it **over-admits** (a low-priority task can
//! miss every deadline under a total utilization well below the cap) and
//! **under-admits** (harmonic task sets are schedulable right up to
//! utilization 1, far above any safe cap).
//!
//! [`RtaResolver`] replaces the cap with the exact test: per CPU, compute
//! every task's worst-case response time under preemptive fixed-priority
//! scheduling and admit only when each stays within its period (implicit
//! deadline). The WCET budget of a component is its declared claim,
//! `cpuusage × period`, inflated by the container's per-cycle overhead; the
//! standard recurrence
//!
//! ```text
//! R(i) = B + C(i) + Σ over j in hep(i) of ceil(R(i) / T(j)) · C(j)
//! ```
//!
//! iterates to a fixpoint, where `hep(i)` are the tasks on the same CPU with
//! higher **or equal** priority (the kernel breaks priority ties FIFO and
//! round-robins among peers, so an equal-priority job can be delayed by peer
//! jobs released inside its response window — counting them in the ceiling
//! interference term is the safe over-approximation), and `B` is a blocking
//! term covering the hybrid bridge's end-of-cycle command poll (§3.2): a
//! lower-priority task that has begun draining its command mailbox finishes
//! the pump before the scheduler runs anything else in a real RTAI
//! deployment, so one full pump of a bridge mailbox is charged to every
//! response time. See `DESIGN.md` for the constants' derivation.
//!
//! Aperiodic components carry no period, so the exact analysis is undefined
//! for them; like [`RmBoundResolver`](crate::resolve::RmBoundResolver), the
//! resolver falls back to the necessary condition (utilization ≤ 1) whenever
//! the CPU hosts any aperiodic claim.

use crate::lifecycle::ComponentState;
use crate::resolve::{Decision, ResolvingService};
use crate::view::{ComponentInfo, SystemView};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Slack used for float comparisons, matching the built-in resolvers.
const EPS: f64 = 1e-9;

/// Fixpoint-iteration cap; the recurrence is strictly increasing until it
/// converges or exceeds the deadline, so this only guards pathological sets.
const MAX_ITERS: u32 = 100_000;

/// Cost-model constants for [`RtaParams::default`]. They mirror the
/// simulator's defaults (see `rtos::kernel::KernelConfig` and
/// `crate::hybrid::HybridRtBody`); a deployment with different kernel costs
/// should construct its own [`RtaParams`].
mod cost {
    /// Fixed per-cycle dispatch cost (`TaskConfig::base_cost` default).
    pub const BASE_NS: u64 = 1_000;
    /// Worst-case port-table indirection (`compute_about(350)` samples in
    /// `[175, 525)`).
    pub const INDIRECTION_NS: u64 = 525;
    /// One mailbox operation (`KernelConfig::mbx_op_cost` default) — the
    /// empty end-of-cycle command poll every bridged task pays.
    pub const MBX_OP_NS: u64 = 180;
    /// Handling one queued management command beyond the mailbox ops.
    pub const CMD_HANDLE_NS: u64 = 250;
    /// Bridge command-mailbox capacity (the DRCR creates them 16 deep).
    pub const CMD_MBX_DEPTH: u64 = 16;
}

/// Tuning constants of the analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtaParams {
    /// Per-cycle container overhead added to every task's WCET budget, in
    /// nanoseconds: the declared claim covers the component's *logic*, not
    /// the dispatch cost, port-table indirection and empty command poll the
    /// container adds around it.
    pub overhead_ns: u64,
    /// Blocking term added to every response time, in nanoseconds: the
    /// longest end-of-cycle command pump a lower-priority task can be
    /// committed to when a higher-priority job is released.
    pub blocking_ns: u64,
}

impl Default for RtaParams {
    /// Conservative defaults derived from the simulator's cost model:
    /// overhead = base cost + worst-case indirection + one empty poll;
    /// blocking = one full pump of a 16-deep command mailbox, each command
    /// costing a receive, its handling, and a reply send.
    fn default() -> Self {
        RtaParams {
            overhead_ns: cost::BASE_NS + cost::INDIRECTION_NS + cost::MBX_OP_NS,
            blocking_ns: cost::CMD_MBX_DEPTH
                * (cost::MBX_OP_NS + cost::CMD_HANDLE_NS + cost::MBX_OP_NS),
        }
    }
}

impl RtaParams {
    /// The pure textbook analysis: no container overhead, no blocking term.
    /// Useful for boundary cases (a single task claiming exactly 100% is
    /// schedulable only when nothing is charged around it) and for
    /// comparing against hand-computed recurrences.
    pub fn exact() -> Self {
        RtaParams {
            overhead_ns: 0,
            blocking_ns: 0,
        }
    }
}

/// One task's computed worst-case response time.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskWcrt {
    /// Component name.
    pub name: String,
    /// Fixed priority (lower is more urgent).
    pub priority: u8,
    /// WCET budget used: `ceil(cpuusage × period) + overhead`.
    pub wcet_ns: u64,
    /// The computed response time. When `ok` is false this is the first
    /// recurrence value past the deadline (evidence, not a fixpoint).
    pub wcrt_ns: u64,
    /// Implicit deadline (the period).
    pub deadline_ns: u64,
    /// `wcrt_ns <= deadline_ns`.
    pub ok: bool,
}

/// Result of analysing one hypothetical task set (candidate included).
#[derive(Debug, Clone, PartialEq)]
pub struct RtaAnalysis {
    /// The CPU analysed.
    pub cpu: u32,
    /// Whether every task (existing and candidate) meets its deadline.
    pub schedulable: bool,
    /// Per-task response times, priority order (empty on the aperiodic
    /// utilization fallback).
    pub wcrts: Vec<TaskWcrt>,
    /// Why the set is unschedulable, when it is.
    pub reason: Option<String>,
}

impl RtaAnalysis {
    /// The computed WCRT of one task, when the exact analysis ran.
    pub fn wcrt_of(&self, name: &str) -> Option<u64> {
        self.wcrts
            .iter()
            .find(|w| w.name == name)
            .map(|w| w.wcrt_ns)
    }
}

/// The RTA resolving service. Selectable as the executive's internal policy
/// via [`ResolutionStrategy::ResponseTime`](crate::drcr::ResolutionStrategy)
/// or registrable as a customized resolving service (paper §2.3) like any
/// other [`ResolvingService`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RtaResolver {
    params: RtaParams,
}

impl fmt::Display for RtaResolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "response-time (overhead {} ns, blocking {} ns)",
            self.params.overhead_ns, self.params.blocking_ns
        )
    }
}

/// Internal task model fed to the recurrence.
struct TaskModel {
    name: String,
    priority: u8,
    period_ns: u64,
    wcet_ns: u64,
}

impl RtaResolver {
    /// A resolver with explicit parameters.
    pub fn new(params: RtaParams) -> Self {
        RtaResolver { params }
    }

    /// The parameters in force.
    pub fn params(&self) -> RtaParams {
        self.params
    }

    /// Runs the full analysis for the candidate's CPU: the hypothetical
    /// task set is every admission holder on that CPU plus the candidate.
    ///
    /// Existing tasks are re-analysed too — a candidate with a more urgent
    /// priority steals cycles from everything below it, so admitting it may
    /// break an already-admitted contract even when its own response time
    /// fits.
    pub fn analyze(&self, candidate: &ComponentInfo, view: &SystemView) -> RtaAnalysis {
        let cpu = candidate.cpu;
        if !candidate.cpu_usage.is_finite()
            || candidate.cpu_usage <= 0.0
            || candidate.cpu_usage > 1.0
        {
            return RtaAnalysis {
                cpu,
                schedulable: false,
                wcrts: Vec::new(),
                reason: Some(format!(
                    "RTA: invalid cpuusage claim {} (must be finite, in (0, 1])",
                    candidate.cpu_usage
                )),
            };
        }

        // Aperiodic claims have no period: fall back to the necessary
        // utilization condition for the whole CPU.
        let aperiodic_present =
            !candidate.is_periodic() || view.admitted_sorted(cpu).any(|c| !c.is_periodic());
        if aperiodic_present {
            let u = view.utilization(cpu) + candidate.cpu_usage;
            let schedulable = u <= 1.0 + EPS;
            return RtaAnalysis {
                cpu,
                schedulable,
                wcrts: Vec::new(),
                reason: (!schedulable).then(|| {
                    format!("RTA (aperiodic fallback): utilization {u:.3} > 1 on CPU {cpu}")
                }),
            };
        }

        // Hypothetical set: admission holders on the CPU (already sorted by
        // priority, list order within ties) plus the candidate, placed last
        // among its priority peers — it arrives last, FIFO. An existing
        // claim the model cannot represent makes the whole set
        // unanalysable: nothing is proven, so nothing is admitted.
        let mut models: Vec<TaskModel> = Vec::new();
        for c in view
            .admitted_sorted(cpu)
            .filter(|c| *c.name != *candidate.name)
        {
            match self.model_of(c) {
                Ok(m) => models.push(m),
                Err(why) => return inconclusive(cpu, why),
            }
        }
        let insert_at = models
            .iter()
            .position(|m| m.priority > candidate.priority)
            .unwrap_or(models.len());
        match self.model_of(candidate) {
            Ok(m) => models.insert(insert_at, m),
            Err(why) => return inconclusive(cpu, why),
        }

        let mut wcrts = Vec::with_capacity(models.len());
        let mut reason = None;
        for (i, task) in models.iter().enumerate() {
            let hep: Vec<(u64, u64)> = models
                .iter()
                .enumerate()
                .filter(|(j, other)| *j != i && other.priority <= task.priority)
                .map(|(_, other)| (other.period_ns, other.wcet_ns))
                .collect();
            let (wcrt_ns, ok) =
                match response_time(task.wcet_ns, self.params.blocking_ns, &hep, task.period_ns) {
                    Convergence::Converged(v) => (v, true),
                    Convergence::Miss(v) => (v, false),
                    Convergence::Inconclusive => {
                        return inconclusive(
                            cpu,
                            format!(
                            "response-time recurrence for `{}` on CPU {cpu} left the analysable \
                             range (overflow or iteration budget exhausted)",
                            task.name
                        ),
                        )
                    }
                };
            if !ok && reason.is_none() {
                reason = Some(format!(
                    "RTA: `{}` would miss its deadline on CPU {cpu}: response {} ns > period {} ns",
                    task.name, wcrt_ns, task.period_ns
                ));
            }
            wcrts.push(TaskWcrt {
                name: task.name.clone(),
                priority: task.priority,
                wcet_ns: task.wcet_ns,
                wcrt_ns,
                deadline_ns: task.period_ns,
                ok,
            });
        }
        RtaAnalysis {
            cpu,
            schedulable: reason.is_none(),
            wcrts,
            reason,
        }
    }

    /// Admits a whole arrival batch in **one** fixed-point pass per CPU.
    ///
    /// Sequential admission of `K` candidates runs `K` analyses; this runs
    /// one per touched CPU, against the hypothetical view where all of that
    /// CPU's candidates except the last are already active, and analyses
    /// the last candidate — byte-identical to the `K`-th analysis the
    /// sequential path would produce. Returns `Some` only when that single
    /// pass provably implies every sequential prefix would also have been
    /// admitted:
    ///
    /// * **Exact mode** (all candidates on the CPU periodic, no admitted
    ///   aperiodic claim): adding a task never shortens another's response
    ///   time — interference terms only grow — so the full set being
    ///   schedulable implies every prefix is.
    /// * **Fallback mode** (an admitted aperiodic claim on the CPU, or all
    ///   candidates aperiodic): every sequential step uses the utilization
    ///   fallback, and claims are positive, so the full-set utilization
    ///   bounds every prefix.
    ///
    /// Mixed periodic/aperiodic candidates on a CPU with no admitted
    /// aperiodic claim switch analysis mode mid-sequence (order-dependent),
    /// and an unschedulable or invalid-claim batch may still admit a
    /// sequential prefix — both return `None`, and the caller falls back to
    /// per-candidate admission.
    pub fn analyze_batch(
        &self,
        candidates: &[ComponentInfo],
        view: &SystemView,
    ) -> Option<Vec<RtaAnalysis>> {
        if candidates.is_empty() {
            return None;
        }
        if candidates
            .iter()
            .any(|c| !c.cpu_usage.is_finite() || c.cpu_usage <= 0.0 || c.cpu_usage > 1.0)
        {
            return None;
        }
        // Group per CPU, preserving arrival (sweep) order within each group.
        let mut groups: BTreeMap<u32, Vec<&ComponentInfo>> = BTreeMap::new();
        for c in candidates {
            groups.entry(c.cpu).or_default().push(c);
        }
        for (&cpu, group) in &groups {
            let admitted_aperiodic = view.admitted_sorted(cpu).any(|c| !c.is_periodic());
            let all_periodic = group.iter().all(|c| c.is_periodic());
            let all_aperiodic = group.iter().all(|c| !c.is_periodic());
            if !(admitted_aperiodic || all_periodic || all_aperiodic) {
                return None;
            }
        }
        // One hypothetical view serves every CPU (cross-CPU components never
        // interact in the analysis): flip all candidates active except each
        // CPU's last, which stays the analysed candidate.
        let last_of: HashMap<u32, &str> = groups
            .iter()
            .map(|(cpu, group)| (*cpu, &*group[group.len() - 1].name))
            .collect();
        let flip: HashSet<&str> = candidates
            .iter()
            .filter(|c| last_of[&c.cpu] != &*c.name)
            .map(|c| &*c.name)
            .collect();
        let mut hyp = view.clone();
        let indices: Vec<usize> = hyp
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| flip.contains(&*c.name))
            .map(|(i, _)| i)
            .collect();
        for idx in indices {
            hyp.set_state_at(idx, ComponentState::Active);
        }
        let mut analyses = Vec::with_capacity(groups.len());
        for group in groups.values() {
            let analysis = self.analyze(group[group.len() - 1], &hyp);
            if !analysis.schedulable {
                return None;
            }
            analyses.push(analysis);
        }
        Some(analyses)
    }

    /// Builds the recurrence model for one task, or explains why the task
    /// cannot be modelled. Existing components are validated too: a claim
    /// that slipped past admission (or was mutated afterwards) must poison
    /// the analysis as *inconclusive*, never silently saturate the `u64`
    /// cast and produce a plausible-looking WCET.
    fn model_of(&self, c: &ComponentInfo) -> Result<TaskModel, String> {
        let period_ns = c.period_ns.expect("periodic component");
        if !c.cpu_usage.is_finite() || c.cpu_usage <= 0.0 || c.cpu_usage > 1.0 {
            return Err(format!(
                "component `{}` carries an invalid cpuusage claim {} (must be finite, in (0, 1])",
                c.name, c.cpu_usage
            ));
        }
        let claim = (c.cpu_usage * period_ns as f64).ceil();
        if !claim.is_finite() || claim < 0.0 || claim >= u64::MAX as f64 {
            return Err(format!(
                "claim of `{}` ({claim}) does not fit the analysis range",
                c.name
            ));
        }
        let wcet_ns = (claim as u64)
            .checked_add(self.params.overhead_ns)
            .ok_or_else(|| {
                format!(
                    "WCET of `{}` overflows once container overhead is charged",
                    c.name
                )
            })?;
        Ok(TaskModel {
            name: c.name.to_string(),
            priority: c.priority,
            period_ns,
            wcet_ns,
        })
    }
}

/// A typed "analysis inconclusive ⇒ inadmissible" rejection: the task set
/// could not be analysed (invalid claim, arithmetic overflow, iteration
/// budget), so schedulability is unproven and the candidate is rejected.
fn inconclusive(cpu: u32, why: String) -> RtaAnalysis {
    RtaAnalysis {
        cpu,
        schedulable: false,
        wcrts: Vec::new(),
        reason: Some(format!("RTA: analysis inconclusive, rejecting: {why}")),
    }
}

impl ResolvingService for RtaResolver {
    fn name(&self) -> &str {
        "response-time"
    }

    fn admit(&self, candidate: &ComponentInfo, view: &SystemView) -> Decision {
        let analysis = self.analyze(candidate, view);
        if analysis.schedulable {
            Decision::Admit
        } else {
            Decision::Reject(
                analysis
                    .reason
                    .unwrap_or_else(|| "RTA: unschedulable".to_string()),
            )
        }
    }
}

/// Outcome of the fixpoint iteration for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Convergence {
    /// The recurrence converged within the deadline (the fixpoint).
    Converged(u64),
    /// The first recurrence value past the deadline (evidence, not a
    /// fixpoint).
    Miss(u64),
    /// The recurrence left the range the analysis can reason about —
    /// interference arithmetic overflowed, a value no longer fits `u64`,
    /// or the iteration budget ran out before convergence. Nothing is
    /// proven either way; the caller must treat the set as inadmissible
    /// rather than report a clamped number as a response time.
    Inconclusive,
}

/// The fixpoint iteration for one task. All interference arithmetic is
/// checked: an overflow is an [`Convergence::Inconclusive`] verdict, never
/// a silently clamped response time.
fn response_time(wcet: u64, blocking: u64, hep: &[(u64, u64)], deadline: u64) -> Convergence {
    let base = blocking as u128 + wcet as u128;
    let mut r = base;
    for _ in 0..MAX_ITERS {
        if r > deadline as u128 {
            return match u64::try_from(r) {
                Ok(v) => Convergence::Miss(v),
                Err(_) => Convergence::Inconclusive,
            };
        }
        let mut next = base;
        for &(period, c) in hep {
            let jobs = r.div_ceil(period.max(1) as u128);
            let Some(term) = jobs.checked_mul(c as u128) else {
                return Convergence::Inconclusive;
            };
            let Some(sum) = next.checked_add(term) else {
                return Convergence::Inconclusive;
            };
            next = sum;
        }
        if next == r {
            // A fixpoint at or under the deadline always fits u64.
            return Convergence::Converged(r as u64);
        }
        r = next;
    }
    Convergence::Inconclusive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::ComponentState;

    fn comp(
        name: &str,
        state: ComponentState,
        usage: f64,
        prio: u8,
        period_ms: u64,
    ) -> ComponentInfo {
        ComponentInfo {
            name: name.into(),
            state,
            cpu: 0,
            cpu_usage: usage,
            priority: prio,
            period_ns: Some(period_ms * 1_000_000),
        }
    }

    fn aper(name: &str, state: ComponentState, usage: f64, prio: u8) -> ComponentInfo {
        ComponentInfo {
            name: name.into(),
            state,
            cpu: 0,
            cpu_usage: usage,
            priority: prio,
            period_ns: None,
        }
    }

    #[test]
    fn textbook_recurrence_matches_hand_computation() {
        // C=2.2ms T=8ms under a C=3ms T=5ms interferer:
        // R0 = 2.2 -> 2.2 + 1*3 = 5.2 -> 2.2 + 2*3 = 8.2 > 8: miss.
        let out = response_time(2_200_000, 0, &[(5_000_000, 3_000_000)], 8_000_000);
        assert_eq!(out, Convergence::Miss(8_200_000));
        // C=2ms fits: R = 2 + 1*3 = 5 -> fixpoint.
        let out = response_time(2_000_000, 0, &[(5_000_000, 3_000_000)], 8_000_000);
        assert_eq!(out, Convergence::Converged(5_000_000));
    }

    #[test]
    fn blocking_term_is_charged() {
        // Alone, C=5 fits a 10 deadline; with blocking 6 it does not.
        assert_eq!(response_time(5, 0, &[], 10), Convergence::Converged(5));
        assert_eq!(response_time(5, 6, &[], 10), Convergence::Miss(11));
    }

    #[test]
    fn recurrence_converges_exactly_at_the_deadline() {
        // R == deadline is schedulable (implicit deadline, inclusive).
        assert_eq!(response_time(10, 0, &[], 10), Convergence::Converged(10));
    }

    #[test]
    fn overflowing_recurrence_is_inconclusive_not_clamped() {
        // base = blocking + wcet ≈ 2^65 no longer fits u64: the old code
        // clamped this to u64::MAX and reported it as a miss "evidence"
        // value; now the verdict is typed as inconclusive.
        assert_eq!(
            response_time(u64::MAX, u64::MAX, &[], 10),
            Convergence::Inconclusive
        );
        // Interference product overflow inside the iteration.
        assert_eq!(
            response_time(u64::MAX, u64::MAX, &[(1, u64::MAX)], u64::MAX),
            Convergence::Inconclusive
        );
    }

    #[test]
    fn invalid_existing_claim_poisons_the_analysis_typed() {
        // The *candidate* is valid; an already-admitted component carries a
        // NaN claim (slipped in through a mutated view). The old model
        // builder saturated `NaN as u64` to 0 and analysed garbage; the
        // analysis must now reject as inconclusive with a typed reason.
        let mut sick = comp("sick", ComponentState::Active, 0.5, 1, 10);
        sick.cpu_usage = f64::NAN;
        let candidate = comp("ok", ComponentState::Unsatisfied, 0.1, 3, 10);
        let view = SystemView::new(1, vec![sick, candidate.clone()]);
        let rta = RtaResolver::default();
        let analysis = rta.analyze(&candidate, &view);
        assert!(!analysis.schedulable);
        assert!(analysis.wcrts.is_empty());
        let reason = analysis.reason.as_deref().unwrap();
        assert!(reason.contains("inconclusive"), "{reason}");
        assert!(reason.contains("`sick`"), "{reason}");
        let d = rta.admit(&candidate, &view);
        assert!(!d.is_admit());
        assert!(d.to_string().contains("inconclusive"), "{d}");
    }

    #[test]
    fn wcet_overhead_overflow_is_inconclusive() {
        // A full-period claim at a period near u64::MAX overflows once the
        // container overhead is added; the typed rejection names the task.
        let candidate = ComponentInfo {
            name: "huge".into(),
            state: ComponentState::Unsatisfied,
            cpu: 0,
            cpu_usage: 1.0,
            priority: 1,
            period_ns: Some(u64::MAX),
        };
        let view = SystemView::new(1, vec![candidate.clone()]);
        let rta = RtaResolver::default();
        let analysis = rta.analyze(&candidate, &view);
        assert!(!analysis.schedulable);
        assert!(
            analysis.reason.as_deref().unwrap().contains("inconclusive"),
            "{:?}",
            analysis.reason
        );
    }

    #[test]
    fn full_utilization_single_task_admitted_under_exact_params() {
        let rta = RtaResolver::new(RtaParams::exact());
        let candidate = comp("solo", ComponentState::Unsatisfied, 1.0, 3, 10);
        let view = SystemView::new(1, vec![candidate.clone()]);
        assert!(rta.admit(&candidate, &view).is_admit());
        let analysis = rta.analyze(&candidate, &view);
        assert_eq!(analysis.wcrt_of("solo"), Some(10_000_000));
    }

    #[test]
    fn full_utilization_single_task_rejected_once_overhead_counts() {
        // The claim covers only the logic; with container overhead added a
        // 100% claim no longer fits its period.
        let rta = RtaResolver::default();
        let candidate = comp("solo", ComponentState::Unsatisfied, 1.0, 3, 10);
        let view = SystemView::new(1, vec![candidate.clone()]);
        let analysis = rta.analyze(&candidate, &view);
        assert!(!analysis.schedulable);
        assert!(analysis.reason.as_deref().unwrap_or("").contains("solo"));
    }

    #[test]
    fn harmonic_set_admitted_beyond_any_safe_cap() {
        // 0.96 total utilization over harmonic periods: exact analysis
        // admits, any cap at or below 0.9 would reject the tail.
        let existing: Vec<ComponentInfo> = (0..4)
            .map(|i| comp(&format!("f{i}"), ComponentState::Active, 0.08, 1, 5))
            .chain((0..4).map(|i| comp(&format!("m{i}"), ComponentState::Active, 0.08, 2, 10)))
            .chain((0..3).map(|i| comp(&format!("s{i}"), ComponentState::Active, 0.08, 3, 20)))
            .collect();
        let candidate = comp("s3", ComponentState::Unsatisfied, 0.08, 3, 20);
        let mut all = existing;
        all.push(candidate.clone());
        let view = SystemView::new(1, all);
        let rta = RtaResolver::default();
        let analysis = rta.analyze(&candidate, &view);
        assert!(analysis.schedulable, "{:?}", analysis.reason);
        assert_eq!(analysis.wcrts.len(), 12);
        // The lowest-priority tasks see nearly the whole hyperperiod load.
        let worst = analysis.wcrts.iter().map(|w| w.wcrt_ns).max().unwrap();
        assert!(worst > 19_000_000 && worst <= 20_000_000, "worst {worst}");
    }

    #[test]
    fn candidate_breaking_an_existing_task_is_rejected() {
        // The candidate itself fits, but it preempts the incumbent below it
        // into a miss: admission must re-check the whole CPU.
        let incumbent = comp("low", ComponentState::Active, 0.4, 5, 10);
        let candidate = comp("hp", ComponentState::Unsatisfied, 0.65, 1, 10);
        let view = SystemView::new(1, vec![incumbent, candidate.clone()]);
        let rta = RtaResolver::new(RtaParams::exact());
        let analysis = rta.analyze(&candidate, &view);
        assert!(!analysis.schedulable);
        assert!(analysis.reason.as_deref().unwrap().contains("`low`"));
        // The candidate's own response time is fine.
        let own = analysis.wcrts.iter().find(|w| w.name == "hp").unwrap();
        assert!(own.ok);
    }

    #[test]
    fn aperiodic_candidate_falls_back_to_utilization() {
        let rta = RtaResolver::default();
        let existing = comp("p", ComponentState::Active, 0.5, 2, 10);
        let ok = aper("evt", ComponentState::Unsatisfied, 0.4, 4);
        let view = SystemView::new(1, vec![existing.clone(), ok.clone()]);
        assert!(rta.admit(&ok, &view).is_admit());
        let hog = aper("hog", ComponentState::Unsatisfied, 0.6, 4);
        let view = SystemView::new(1, vec![existing, hog.clone()]);
        let d = rta.admit(&hog, &view);
        assert!(!d.is_admit());
        assert!(d.to_string().contains("aperiodic fallback"), "{d}");
    }

    #[test]
    fn invalid_claims_rejected_not_propagated() {
        let rta = RtaResolver::default();
        let view = SystemView::new(1, vec![]);
        for bad in [f64::NAN, f64::INFINITY, -0.25, 0.0, 1.5] {
            let mut c = comp("bad", ComponentState::Unsatisfied, 0.5, 2, 10);
            c.cpu_usage = bad;
            assert!(!rta.admit(&c, &view).is_admit(), "claim {bad} admitted");
        }
    }

    #[test]
    fn analysis_is_deterministic_and_display_renders() {
        let candidate = comp("a", ComponentState::Unsatisfied, 0.3, 2, 10);
        let view = SystemView::new(1, vec![candidate.clone()]);
        let rta = RtaResolver::default();
        assert_eq!(
            rta.analyze(&candidate, &view),
            rta.analyze(&candidate, &view)
        );
        assert!(rta.to_string().contains("response-time"));
        assert_eq!(rta.name(), "response-time");
    }
}
