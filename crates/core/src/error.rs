//! Error types of the DRCom layer.

use crate::lifecycle::ComponentState;
use crate::xml::XmlError;
use std::fmt;

/// A descriptor parse/validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum DescriptorError {
    /// The XML itself is malformed.
    Xml(XmlError),
    /// The root element is not `component`.
    WrongRoot(String),
    /// A required attribute is missing.
    MissingAttribute {
        /// The element lacking the attribute.
        element: String,
        /// The missing attribute name.
        attribute: &'static str,
    },
    /// A required child element is missing.
    MissingElement {
        /// The parent element.
        parent: String,
        /// The missing child name.
        child: &'static str,
    },
    /// An attribute value failed to parse or validate.
    BadValue {
        /// The element carrying the attribute.
        element: String,
        /// The attribute name.
        attribute: &'static str,
        /// Why the value is bad.
        reason: String,
    },
    /// Two ports of the component share a name.
    DuplicatePort(String),
    /// Some other structural rule was violated.
    Invalid(String),
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptorError::Xml(e) => write!(f, "{e}"),
            DescriptorError::WrongRoot(name) => {
                write!(f, "root element must be `component`, found `{name}`")
            }
            DescriptorError::MissingAttribute { element, attribute } => {
                write!(f, "element `{element}` is missing attribute `{attribute}`")
            }
            DescriptorError::MissingElement { parent, child } => {
                write!(f, "element `{parent}` is missing child `{child}`")
            }
            DescriptorError::BadValue {
                element,
                attribute,
                reason,
            } => write!(f, "bad `{attribute}` on `{element}`: {reason}"),
            DescriptorError::DuplicatePort(name) => {
                write!(f, "duplicate port name `{name}`")
            }
            DescriptorError::Invalid(reason) => write!(f, "invalid descriptor: {reason}"),
        }
    }
}

impl std::error::Error for DescriptorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DescriptorError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for DescriptorError {
    fn from(e: XmlError) -> Self {
        DescriptorError::Xml(e)
    }
}

/// Errors from the DRCR executive.
#[derive(Debug, Clone, PartialEq)]
pub enum DrcrError {
    /// No component registered under that name.
    NoSuchComponent(String),
    /// A component with that name is already registered (names are globally
    /// unique, §2.3).
    DuplicateComponent(String),
    /// The requested lifecycle transition is not legal.
    IllegalTransition {
        /// The component.
        component: String,
        /// Its current state.
        from: ComponentState,
        /// The requested state.
        to: ComponentState,
    },
    /// A fleet references a communication channel no member provides
    /// (e.g. a stream inport with no producing outport anywhere in the
    /// fleet): the read side would only fail at run time, so the lowering
    /// rejects the topology up front.
    MissingChannel {
        /// The consuming component.
        component: String,
        /// The unprovided port/channel name.
        port: String,
    },
    /// A kernel operation failed.
    Kernel(String),
    /// Descriptor problems detected at registration time.
    Descriptor(DescriptorError),
    /// The management channel to the real-time side failed.
    Management(String),
}

impl fmt::Display for DrcrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrcrError::NoSuchComponent(name) => write!(f, "no component named `{name}`"),
            DrcrError::DuplicateComponent(name) => {
                write!(f, "component `{name}` is already registered")
            }
            DrcrError::IllegalTransition {
                component,
                from,
                to,
            } => write!(
                f,
                "component `{component}` cannot move from {from:?} to {to:?}"
            ),
            DrcrError::MissingChannel { component, port } => {
                write!(
                    f,
                    "component `{component}` consumes channel `{port}` that no fleet member provides"
                )
            }
            DrcrError::Kernel(msg) => write!(f, "kernel error: {msg}"),
            DrcrError::Descriptor(e) => write!(f, "{e}"),
            DrcrError::Management(msg) => write!(f, "management channel error: {msg}"),
        }
    }
}

impl std::error::Error for DrcrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrcrError::Descriptor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DescriptorError> for DrcrError {
    fn from(e: DescriptorError) -> Self {
        DrcrError::Descriptor(e)
    }
}

impl From<rtos::KernelError> for DrcrError {
    fn from(e: rtos::KernelError) -> Self {
        DrcrError::Kernel(e.to_string())
    }
}

impl From<rtos::IpcError> for DrcrError {
    fn from(e: rtos::IpcError) -> Self {
        DrcrError::Kernel(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DescriptorError::MissingAttribute {
            element: "component".into(),
            attribute: "name",
        };
        assert!(e.to_string().contains("name"));
        let e = DrcrError::NoSuchComponent("calc".into());
        assert!(e.to_string().contains("calc"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + 'static>() {}
        assert_err::<DescriptorError>();
        assert_err::<DrcrError>();
    }
}
