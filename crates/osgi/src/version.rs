//! OSGi version and version-range syntax.
//!
//! Versions follow the OSGi `major.minor.micro.qualifier` grammar; ranges
//! follow the interval notation of the core specification, e.g.
//! `[1.0,2.0)`, `(1.2.3,2]`, or a bare version `1.0` meaning
//! `[1.0, ∞)`.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A parse failure for [`Version`] or [`VersionRange`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVersionError {
    input: String,
    reason: &'static str,
}

impl ParseVersionError {
    fn new(input: &str, reason: &'static str) -> Self {
        ParseVersionError {
            input: input.to_string(),
            reason,
        }
    }
}

impl fmt::Display for ParseVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid version syntax `{}`: {}",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ParseVersionError {}

/// An OSGi version: `major.minor.micro.qualifier`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Version {
    /// Major segment.
    pub major: u32,
    /// Minor segment.
    pub minor: u32,
    /// Micro segment.
    pub micro: u32,
    /// Optional qualifier, compared lexicographically.
    pub qualifier: String,
}

impl Version {
    /// Creates a version without qualifier.
    pub fn new(major: u32, minor: u32, micro: u32) -> Self {
        Version {
            major,
            minor,
            micro,
            qualifier: String::new(),
        }
    }

    /// The zero version `0.0.0`.
    pub fn zero() -> Self {
        Version::new(0, 0, 0)
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.major, self.minor, self.micro, &self.qualifier).cmp(&(
            other.major,
            other.minor,
            other.micro,
            &other.qualifier,
        ))
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.micro)?;
        if !self.qualifier.is_empty() {
            write!(f, ".{}", self.qualifier)?;
        }
        Ok(())
    }
}

impl FromStr for Version {
    type Err = ParseVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseVersionError::new(s, "empty version"));
        }
        let mut parts = s.splitn(4, '.');
        let mut seg = |name: &'static str| -> Result<u32, ParseVersionError> {
            match parts.next() {
                None => Ok(0),
                Some(p) => p
                    .parse::<u32>()
                    .map_err(|_| ParseVersionError::new(s, name)),
            }
        };
        let major = seg("bad major segment")?;
        let minor = seg("bad minor segment")?;
        let micro = seg("bad micro segment")?;
        let qualifier = parts.next().unwrap_or("").to_string();
        if !qualifier
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return Err(ParseVersionError::new(s, "bad qualifier"));
        }
        Ok(Version {
            major,
            minor,
            micro,
            qualifier,
        })
    }
}

/// An OSGi version range, e.g. `[1.0,2.0)` or the bare floor `1.0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VersionRange {
    /// Lower bound.
    pub floor: Version,
    /// Whether the lower bound itself is included.
    pub floor_inclusive: bool,
    /// Upper bound; `None` means unbounded above.
    pub ceiling: Option<Version>,
    /// Whether the upper bound itself is included.
    pub ceiling_inclusive: bool,
}

impl VersionRange {
    /// The range accepting any version: `[0.0.0, ∞)`.
    pub fn any() -> Self {
        VersionRange {
            floor: Version::zero(),
            floor_inclusive: true,
            ceiling: None,
            ceiling_inclusive: false,
        }
    }

    /// The range `[floor, ∞)`.
    pub fn at_least(floor: Version) -> Self {
        VersionRange {
            floor,
            floor_inclusive: true,
            ceiling: None,
            ceiling_inclusive: false,
        }
    }

    /// The exact range `[v, v]`.
    pub fn exact(v: Version) -> Self {
        VersionRange {
            floor: v.clone(),
            floor_inclusive: true,
            ceiling: Some(v),
            ceiling_inclusive: true,
        }
    }

    /// True when `v` lies within the range.
    pub fn includes(&self, v: &Version) -> bool {
        let lower_ok = match v.cmp(&self.floor) {
            Ordering::Greater => true,
            Ordering::Equal => self.floor_inclusive,
            Ordering::Less => false,
        };
        if !lower_ok {
            return false;
        }
        match &self.ceiling {
            None => true,
            Some(c) => match v.cmp(c) {
                Ordering::Less => true,
                Ordering::Equal => self.ceiling_inclusive,
                Ordering::Greater => false,
            },
        }
    }
}

impl Default for VersionRange {
    fn default() -> Self {
        VersionRange::any()
    }
}

impl fmt::Display for VersionRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ceiling {
            None if self.floor_inclusive => write!(f, "{}", self.floor),
            None => write!(f, "({},)", self.floor),
            Some(c) => write!(
                f,
                "{}{},{}{}",
                if self.floor_inclusive { '[' } else { '(' },
                self.floor,
                c,
                if self.ceiling_inclusive { ']' } else { ')' },
            ),
        }
    }
}

impl FromStr for VersionRange {
    type Err = ParseVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let first = s
            .chars()
            .next()
            .ok_or_else(|| ParseVersionError::new(s, "empty range"))?;
        if first != '[' && first != '(' {
            // Bare version: floor with open ceiling.
            return Ok(VersionRange::at_least(s.parse()?));
        }
        let last = s.chars().last().expect("nonempty");
        if last != ']' && last != ')' {
            return Err(ParseVersionError::new(s, "unterminated interval"));
        }
        let inner = &s[1..s.len() - 1];
        let (lo, hi) = inner
            .split_once(',')
            .ok_or_else(|| ParseVersionError::new(s, "interval needs a comma"))?;
        Ok(VersionRange {
            floor: lo.trim().parse()?,
            floor_inclusive: first == '[',
            ceiling: Some(hi.trim().parse()?),
            ceiling_inclusive: last == ']',
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        s.parse().unwrap()
    }

    #[test]
    fn version_parsing_fills_missing_segments() {
        assert_eq!(v("1"), Version::new(1, 0, 0));
        assert_eq!(v("1.2"), Version::new(1, 2, 0));
        assert_eq!(v("1.2.3"), Version::new(1, 2, 3));
        let q = v("1.2.3.beta-1");
        assert_eq!(q.qualifier, "beta-1");
    }

    #[test]
    fn version_parsing_rejects_garbage() {
        for bad in ["", "a.b", "1.-2", "1.2.3.!!", "1.2.x"] {
            assert!(bad.parse::<Version>().is_err(), "{bad}");
        }
    }

    #[test]
    fn version_ordering() {
        assert!(v("1.0.0") < v("1.0.1"));
        assert!(v("1.0.10") > v("1.0.9"));
        assert!(v("2") > v("1.9.9"));
        assert!(v("1.0.0") < v("1.0.0.a"));
        assert!(v("1.0.0.a") < v("1.0.0.b"));
    }

    #[test]
    fn display_roundtrips() {
        for s in ["1.2.3", "0.0.0", "1.2.3.rc1"] {
            assert_eq!(v(s).to_string(), s);
        }
    }

    #[test]
    fn range_parsing_and_membership() {
        let r: VersionRange = "[1.0,2.0)".parse().unwrap();
        assert!(r.includes(&v("1.0")));
        assert!(r.includes(&v("1.9.9")));
        assert!(!r.includes(&v("2.0")));
        assert!(!r.includes(&v("0.9")));

        let r: VersionRange = "(1.0,2.0]".parse().unwrap();
        assert!(!r.includes(&v("1.0")));
        assert!(r.includes(&v("2.0")));

        let r: VersionRange = "1.5".parse().unwrap();
        assert!(r.includes(&v("1.5")));
        assert!(r.includes(&v("99.0")));
        assert!(!r.includes(&v("1.4.9")));
    }

    #[test]
    fn range_parse_errors() {
        for bad in ["", "[1.0 2.0)", "[1.0,2.0", "[x,2.0)"] {
            assert!(bad.parse::<VersionRange>().is_err(), "{bad}");
        }
    }

    #[test]
    fn exact_and_any_ranges() {
        let e = VersionRange::exact(v("1.2.3"));
        assert!(e.includes(&v("1.2.3")));
        assert!(!e.includes(&v("1.2.4")));
        assert!(VersionRange::any().includes(&v("0.0.0")));
        assert!(VersionRange::any().includes(&v("100.0.0")));
    }

    #[test]
    fn range_display() {
        assert_eq!(
            "[1.0,2.0)".parse::<VersionRange>().unwrap().to_string(),
            "[1.0.0,2.0.0)"
        );
        assert_eq!("1.5".parse::<VersionRange>().unwrap().to_string(), "1.5.0");
    }
}
