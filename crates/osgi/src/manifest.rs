//! Bundle manifests: symbolic name, version, package imports/exports.
//!
//! The OSGi module layer wires `Import-Package` requirements to
//! `Export-Package` capabilities with version ranges; the framework refuses
//! to start a bundle whose imports cannot be wired.

use crate::version::{Version, VersionRange};

/// A package exported by a bundle, at a version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackageExport {
    /// The Java-style package name, e.g. `ua.pats.demo.smartcamera`.
    pub package: String,
    /// The exported version.
    pub version: Version,
}

/// A package imported by a bundle, with an acceptable version range.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackageImport {
    /// The required package name.
    pub package: String,
    /// Acceptable versions.
    pub range: VersionRange,
    /// Optional imports do not block resolution when unsatisfied.
    pub optional: bool,
}

/// A bundle manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleManifest {
    /// Unique symbolic name of the bundle.
    pub symbolic_name: String,
    /// Bundle version.
    pub version: Version,
    /// Exported packages.
    pub exports: Vec<PackageExport>,
    /// Imported packages.
    pub imports: Vec<PackageImport>,
}

impl BundleManifest {
    /// Creates a manifest with no imports or exports.
    pub fn new(symbolic_name: &str, version: Version) -> Self {
        BundleManifest {
            symbolic_name: symbolic_name.to_string(),
            version,
            exports: Vec::new(),
            imports: Vec::new(),
        }
    }

    /// Adds an exported package.
    pub fn exports(mut self, package: &str, version: Version) -> Self {
        self.exports.push(PackageExport {
            package: package.to_string(),
            version,
        });
        self
    }

    /// Adds a mandatory imported package.
    pub fn imports(mut self, package: &str, range: VersionRange) -> Self {
        self.imports.push(PackageImport {
            package: package.to_string(),
            range,
            optional: false,
        });
        self
    }

    /// Adds an optional imported package.
    pub fn imports_optionally(mut self, package: &str, range: VersionRange) -> Self {
        self.imports.push(PackageImport {
            package: package.to_string(),
            range,
            optional: true,
        });
        self
    }

    /// True when this manifest exports a package satisfying `import`.
    pub fn satisfies(&self, import: &PackageImport) -> bool {
        self.exports
            .iter()
            .any(|e| e.package == import.package && import.range.includes(&e.version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_headers() {
        let m = BundleManifest::new("demo.camera", Version::new(1, 0, 0))
            .exports("demo.camera.api", Version::new(1, 2, 0))
            .imports("drt.core", VersionRange::at_least(Version::new(1, 0, 0)))
            .imports_optionally("demo.extra", VersionRange::any());
        assert_eq!(m.exports.len(), 1);
        assert_eq!(m.imports.len(), 2);
        assert!(m.imports[1].optional);
    }

    #[test]
    fn satisfies_checks_name_and_range() {
        let exporter = BundleManifest::new("lib", Version::new(1, 0, 0))
            .exports("lib.api", Version::new(1, 5, 0));
        let want = |range: &str| PackageImport {
            package: "lib.api".into(),
            range: range.parse().unwrap(),
            optional: false,
        };
        assert!(exporter.satisfies(&want("[1.0,2.0)")));
        assert!(!exporter.satisfies(&want("[2.0,3.0)")));
        let other = PackageImport {
            package: "other.api".into(),
            range: VersionRange::any(),
            optional: false,
        };
        assert!(!exporter.satisfies(&other));
    }
}
