//! Framework, bundle and service events.
//!
//! The framework records every state change as an event in an internal
//! queue; interested parties (in this reproduction, most importantly the
//! DRCR executive) **drain** the queue and react. The paper's DRCR
//! "receives notifications from the OSGi framework for component state
//! changes" and uses them to trigger re-configuration — this queue is that
//! notification channel, kept synchronous and deterministic.

use crate::ldap::Properties;
use crate::registry::ServiceId;

/// Identifier of an installed bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BundleId(pub(crate) u64);

impl BundleId {
    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for BundleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bundle#{}", self.0)
    }
}

/// What happened to a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BundleEventKind {
    /// The bundle was installed.
    Installed,
    /// The bundle's imports were wired to exporters.
    Resolved,
    /// The bundle's activator completed start.
    Started,
    /// The bundle's activator completed stop.
    Stopped,
    /// The bundle was replaced in place.
    Updated,
    /// The bundle was removed.
    Uninstalled,
}

/// A bundle lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleEvent {
    /// The affected bundle.
    pub bundle: BundleId,
    /// The bundle's symbolic name at event time.
    pub symbolic_name: String,
    /// What happened.
    pub kind: BundleEventKind,
}

/// What happened to a service registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceEventKind {
    /// A service was registered.
    Registered,
    /// A service's properties changed.
    Modified,
    /// A service is about to disappear.
    Unregistering,
}

/// A service registry event, carrying a snapshot of the service's metadata
/// at event time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceEvent {
    /// The affected service.
    pub service: ServiceId,
    /// Interfaces the service was registered under.
    pub interfaces: Vec<String>,
    /// Property snapshot at event time.
    pub properties: Properties,
    /// What happened.
    pub kind: ServiceEventKind,
}

/// Any framework event.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameworkEvent {
    /// A bundle lifecycle event.
    Bundle(BundleEvent),
    /// A service registry event.
    Service(ServiceEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_id_displays() {
        assert_eq!(BundleId(3).to_string(), "bundle#3");
        assert_eq!(BundleId(3).raw(), 3);
    }

    #[test]
    fn events_are_comparable() {
        let a = BundleEvent {
            bundle: BundleId(1),
            symbolic_name: "x".into(),
            kind: BundleEventKind::Started,
        };
        assert_eq!(a, a.clone());
    }
}
