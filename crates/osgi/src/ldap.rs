//! RFC 1960 LDAP search filters over service properties.
//!
//! OSGi uses LDAP filter strings to select services from the registry —
//! the paper relies on this to let adaptation managers and the DRCR locate
//! management services and customized resolving services. This module
//! implements the full grammar:
//!
//! ```text
//! filter     = '(' filtercomp ')'
//! filtercomp = and | or | not | item
//! and        = '&' filterlist
//! or         = '|' filterlist
//! not        = '!' filter
//! item       = simple | present | substring
//! simple     = attr filtertype value          ; = ~= >= <=
//! present    = attr '=*'
//! substring  = attr '=' [initial] any [final] ; wildcards with '*'
//! ```
//!
//! Values compare numerically when the property is numeric, as booleans for
//! boolean properties, and case-sensitively as strings otherwise (`~=`
//! compares case-insensitively with surrounding whitespace ignored).

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A typed service property value.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// UTF-8 string.
    Str(String),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Homogeneous or heterogeneous list; a filter item matches if it
    /// matches any element (OSGi multi-valued property semantics).
    List(Vec<PropValue>),
}

impl PropValue {
    /// Renders the value the way the registry prints it.
    pub fn as_display_string(&self) -> String {
        match self {
            PropValue::Str(s) => s.clone(),
            PropValue::Int(i) => i.to_string(),
            PropValue::Float(x) => x.to_string(),
            PropValue::Bool(b) => b.to_string(),
            PropValue::List(items) => {
                let inner: Vec<String> = items.iter().map(|v| v.as_display_string()).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }
}

impl From<&str> for PropValue {
    fn from(s: &str) -> Self {
        PropValue::Str(s.to_string())
    }
}

impl From<String> for PropValue {
    fn from(s: String) -> Self {
        PropValue::Str(s)
    }
}

impl From<i64> for PropValue {
    fn from(i: i64) -> Self {
        PropValue::Int(i)
    }
}

impl From<i32> for PropValue {
    fn from(i: i32) -> Self {
        PropValue::Int(i64::from(i))
    }
}

impl From<f64> for PropValue {
    fn from(x: f64) -> Self {
        PropValue::Float(x)
    }
}

impl From<bool> for PropValue {
    fn from(b: bool) -> Self {
        PropValue::Bool(b)
    }
}

/// A case-insensitive property dictionary (OSGi service properties have
/// case-insensitive keys).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Properties {
    entries: BTreeMap<String, PropValue>,
}

impl Properties {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a property, returning any previous value for the key.
    pub fn insert(&mut self, key: &str, value: impl Into<PropValue>) -> Option<PropValue> {
        self.entries.insert(key.to_ascii_lowercase(), value.into())
    }

    /// Builder-style insert.
    pub fn with(mut self, key: &str, value: impl Into<PropValue>) -> Self {
        self.insert(key, value);
        self
    }

    /// Looks up a property (case-insensitive key).
    pub fn get(&self, key: &str) -> Option<&PropValue> {
        self.entries.get(&key.to_ascii_lowercase())
    }

    /// Removes a property.
    pub fn remove(&mut self, key: &str) -> Option<PropValue> {
        self.entries.remove(&key.to_ascii_lowercase())
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PropValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, PropValue)> for Properties {
    fn from_iter<I: IntoIterator<Item = (String, PropValue)>>(iter: I) -> Self {
        let mut props = Properties::new();
        for (k, v) in iter {
            props.insert(&k, v);
        }
        props
    }
}

impl Extend<(String, PropValue)> for Properties {
    fn extend<I: IntoIterator<Item = (String, PropValue)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(&k, v);
        }
    }
}

/// A filter parse failure, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFilterError {
    input: String,
    offset: usize,
    reason: &'static str,
}

impl fmt::Display for ParseFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid LDAP filter `{}` at byte {}: {}",
            self.input, self.offset, self.reason
        )
    }
}

impl std::error::Error for ParseFilterError {}

/// A parsed, evaluable LDAP filter.
///
/// ```
/// use osgi::ldap::{Filter, Properties};
///
/// # fn main() -> Result<(), osgi::ldap::ParseFilterError> {
/// let filter = Filter::parse("(&(objectclass=drt.resolver)(policy=rm))")?;
/// let props = Properties::new()
///     .with("objectclass", "drt.resolver")
///     .with("policy", "rm");
/// assert!(filter.matches(&props));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// `(&(..)(..))` — all must match. Empty list matches everything.
    And(Vec<Filter>),
    /// `(|(..)(..))` — any must match. Empty list matches nothing.
    Or(Vec<Filter>),
    /// `(!(..))`.
    Not(Box<Filter>),
    /// `(attr=*)` — attribute present.
    Present(String),
    /// `(attr=value)`.
    Equal(String, String),
    /// `(attr~=value)` — approximate (case/whitespace-insensitive).
    Approx(String, String),
    /// `(attr>=value)`.
    GreaterEq(String, String),
    /// `(attr<=value)`.
    LessEq(String, String),
    /// `(attr=ini*any*fin)` — substring match. `None` components are
    /// wildcards at the edges.
    Substring {
        /// Attribute name.
        attr: String,
        /// Leading literal (must prefix the value), if any.
        initial: Option<String>,
        /// Inner literals, each must appear in order.
        any: Vec<String>,
        /// Trailing literal (must suffix the value), if any.
        final_: Option<String>,
    },
}

impl Filter {
    /// Parses a filter string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseFilterError`] with the offending byte offset.
    pub fn parse(input: &str) -> Result<Filter, ParseFilterError> {
        let mut p = Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let f = p.parse_filter()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after filter"));
        }
        Ok(f)
    }

    /// Evaluates the filter against a property dictionary.
    pub fn matches(&self, props: &Properties) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(props)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(props)),
            Filter::Not(f) => !f.matches(props),
            Filter::Present(attr) => props.get(attr).is_some(),
            Filter::Equal(attr, value) => match_value(props.get(attr), |v| cmp_eq(v, value)),
            Filter::Approx(attr, value) => match_value(props.get(attr), |v| {
                normalize(&display(v)) == normalize(value)
            }),
            Filter::GreaterEq(attr, value) => {
                match_value(props.get(attr), |v| cmp_ord(v, value, false))
            }
            Filter::LessEq(attr, value) => {
                match_value(props.get(attr), |v| cmp_ord(v, value, true))
            }
            Filter::Substring {
                attr,
                initial,
                any,
                final_,
            } => match_value(props.get(attr), |v| {
                substring_match(&display(v), initial.as_deref(), any, final_.as_deref())
            }),
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                write!(f, "(&")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Filter::Or(fs) => {
                write!(f, "(|")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Filter::Not(x) => write!(f, "(!{x})"),
            Filter::Present(a) => write!(f, "({a}=*)"),
            Filter::Equal(a, v) => write!(f, "({a}={})", escape(v)),
            Filter::Approx(a, v) => write!(f, "({a}~={})", escape(v)),
            Filter::GreaterEq(a, v) => write!(f, "({a}>={})", escape(v)),
            Filter::LessEq(a, v) => write!(f, "({a}<={})", escape(v)),
            Filter::Substring {
                attr,
                initial,
                any,
                final_,
            } => {
                write!(f, "({attr}=")?;
                if let Some(i) = initial {
                    write!(f, "{}", escape(i))?;
                }
                write!(f, "*")?;
                for a in any {
                    write!(f, "{}*", escape(a))?;
                }
                if let Some(x) = final_ {
                    write!(f, "{}", escape(x))?;
                }
                write!(f, ")")
            }
        }
    }
}

impl FromStr for Filter {
    type Err = ParseFilterError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Filter::parse(s)
    }
}

fn escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        if matches!(c, '(' | ')' | '*' | '\\') {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

fn display(v: &PropValue) -> String {
    v.as_display_string()
}

fn normalize(s: &str) -> String {
    s.trim().to_ascii_lowercase()
}

/// Applies `f` to a scalar, or to each element of a list.
fn match_value(v: Option<&PropValue>, f: impl Fn(&PropValue) -> bool) -> bool {
    match v {
        None => false,
        Some(PropValue::List(items)) => items.iter().any(f),
        Some(scalar) => f(scalar),
    }
}

fn cmp_eq(v: &PropValue, literal: &str) -> bool {
    match v {
        PropValue::Str(s) => s == literal,
        PropValue::Int(i) => literal.trim().parse::<i64>() == Ok(*i),
        PropValue::Float(x) => literal
            .trim()
            .parse::<f64>()
            .is_ok_and(|y| (y - x).abs() <= f64::EPSILON * x.abs().max(1.0)),
        PropValue::Bool(b) => literal.trim().parse::<bool>() == Ok(*b),
        PropValue::List(_) => unreachable!("lists unwrapped by match_value"),
    }
}

/// `<=` when `less` is true, otherwise `>=` — comparing the *property* to
/// the literal.
fn cmp_ord(v: &PropValue, literal: &str, less: bool) -> bool {
    let ord = match v {
        PropValue::Int(i) => literal.trim().parse::<i64>().ok().map(|x| i.cmp(&x)),
        PropValue::Float(x) => literal
            .trim()
            .parse::<f64>()
            .ok()
            .and_then(|y| x.partial_cmp(&y)),
        PropValue::Str(s) => Some(s.as_str().cmp(literal)),
        PropValue::Bool(_) => None,
        PropValue::List(_) => unreachable!("lists unwrapped by match_value"),
    };
    match ord {
        None => false,
        Some(o) => {
            if less {
                o != std::cmp::Ordering::Greater
            } else {
                o != std::cmp::Ordering::Less
            }
        }
    }
}

fn substring_match(
    value: &str,
    initial: Option<&str>,
    any: &[String],
    final_: Option<&str>,
) -> bool {
    let mut rest = value;
    if let Some(i) = initial {
        match rest.strip_prefix(i) {
            Some(r) => rest = r,
            None => return false,
        }
    }
    // Trailing literal is peeled off before scanning inner pieces so an
    // inner piece cannot consume the suffix.
    if let Some(fin) = final_ {
        match rest.strip_suffix(fin) {
            Some(r) => rest = r,
            None => return false,
        }
    }
    for piece in any {
        match rest.find(piece.as_str()) {
            Some(idx) => rest = &rest[idx + piece.len()..],
            None => return false,
        }
    }
    true
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, reason: &'static str) -> ParseFilterError {
        ParseFilterError {
            input: self.input.to_string(),
            offset: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), ParseFilterError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(reason))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_filter(&mut self) -> Result<Filter, ParseFilterError> {
        self.expect(b'(', "expected `(`")?;
        let f = match self.peek() {
            Some(b'&') => {
                self.bump();
                Filter::And(self.parse_filter_list()?)
            }
            Some(b'|') => {
                self.bump();
                Filter::Or(self.parse_filter_list()?)
            }
            Some(b'!') => {
                self.bump();
                self.skip_ws();
                Filter::Not(Box::new(self.parse_filter()?))
            }
            Some(_) => self.parse_item()?,
            None => return Err(self.error("unexpected end of filter")),
        };
        self.skip_ws();
        self.expect(b')', "expected `)`")?;
        Ok(f)
    }

    fn parse_filter_list(&mut self) -> Result<Vec<Filter>, ParseFilterError> {
        let mut list = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'(') => list.push(self.parse_filter()?),
                _ => return Ok(list),
            }
        }
    }

    fn parse_item(&mut self) -> Result<Filter, ParseFilterError> {
        let attr = self.parse_attr()?;
        let op = match (self.bump(), self.peek()) {
            (Some(b'~'), Some(b'=')) => {
                self.bump();
                Op::Approx
            }
            (Some(b'>'), Some(b'=')) => {
                self.bump();
                Op::Ge
            }
            (Some(b'<'), Some(b'=')) => {
                self.bump();
                Op::Le
            }
            (Some(b'='), _) => Op::Eq,
            _ => return Err(self.error("expected `=`, `~=`, `>=` or `<=`")),
        };
        let (pieces, had_star) = self.parse_value()?;
        match op {
            Op::Approx => Ok(Filter::Approx(attr, join_plain(&pieces, self, had_star)?)),
            Op::Ge => Ok(Filter::GreaterEq(
                attr,
                join_plain(&pieces, self, had_star)?,
            )),
            Op::Le => Ok(Filter::LessEq(attr, join_plain(&pieces, self, had_star)?)),
            Op::Eq => {
                if !had_star {
                    let value = pieces.into_iter().next().unwrap_or_default();
                    return Ok(Filter::Equal(attr, value));
                }
                // `=*` alone is a presence test.
                if pieces.iter().all(|p| p.is_empty()) && pieces.len() == 2 {
                    return Ok(Filter::Present(attr));
                }
                // Substring: pieces are split on '*'.
                let n = pieces.len();
                let mut iter = pieces.into_iter();
                let first = iter.next().expect("at least one piece");
                let initial = if first.is_empty() { None } else { Some(first) };
                let mut any: Vec<String> = iter.collect();
                let final_ = match any.pop() {
                    Some(last) if !last.is_empty() => Some(last),
                    _ => None,
                };
                debug_assert!(n >= 2);
                any.retain(|p| !p.is_empty());
                Ok(Filter::Substring {
                    attr,
                    initial,
                    any,
                    final_,
                })
            }
        }
    }

    fn parse_attr(&mut self) -> Result<String, ParseFilterError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'=' | b'~' | b'>' | b'<' | b'(' | b')') {
                break;
            }
            self.pos += 1;
        }
        let attr = self.input[start..self.pos].trim();
        if attr.is_empty() {
            return Err(self.error("empty attribute name"));
        }
        Ok(attr.to_string())
    }

    /// Parses a value, splitting on unescaped `*`. Returns the pieces and
    /// whether any star was seen.
    fn parse_value(&mut self) -> Result<(Vec<String>, bool), ParseFilterError> {
        let mut pieces = vec![String::new()];
        let mut had_star = false;
        loop {
            match self.peek() {
                None => return Err(self.error("unexpected end of value")),
                Some(b')') => break,
                Some(b'(') => return Err(self.error("unescaped `(` in value")),
                Some(b'*') => {
                    self.bump();
                    had_star = true;
                    pieces.push(String::new());
                }
                Some(b'\\') => {
                    self.bump();
                    let escaped = self.bump().ok_or_else(|| self.error("dangling escape"))?;
                    pieces.last_mut().expect("nonempty").push(escaped as char);
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.input[self.pos..];
                    let c = rest.chars().next().expect("nonempty");
                    pieces.last_mut().expect("nonempty").push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Ok((pieces, had_star))
    }
}

fn join_plain(
    pieces: &[String],
    p: &Parser<'_>,
    had_star: bool,
) -> Result<String, ParseFilterError> {
    if had_star {
        return Err(p.error("wildcards are only valid with `=`"));
    }
    Ok(pieces.concat())
}

#[derive(Clone, Copy)]
enum Op {
    Eq,
    Approx,
    Ge,
    Le,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props() -> Properties {
        Properties::new()
            .with("objectClass", "drt.resolver")
            .with("service.ranking", 5)
            .with("cpuusage", 0.25)
            .with("enabled", true)
            .with("name", "camera")
            .with(
                "ports",
                PropValue::List(vec!["images".into(), "xysize".into()]),
            )
    }

    fn check(filter: &str, expected: bool) {
        let f = Filter::parse(filter).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(f.matches(&props()), expected, "{filter}");
    }

    #[test]
    fn equality_and_presence() {
        check("(name=camera)", true);
        check("(name=display)", false);
        check("(name=*)", true);
        check("(missing=*)", false);
        check("(enabled=true)", true);
        check("(enabled=false)", false);
    }

    #[test]
    fn numeric_comparisons() {
        check("(service.ranking>=5)", true);
        check("(service.ranking>=6)", false);
        check("(service.ranking<=5)", true);
        check("(service.ranking<=4)", false);
        check("(cpuusage<=0.5)", true);
        check("(cpuusage>=0.5)", false);
        check("(cpuusage=0.25)", true);
    }

    #[test]
    fn boolean_combinators() {
        check("(&(name=camera)(enabled=true))", true);
        check("(&(name=camera)(enabled=false))", false);
        check("(|(name=display)(name=camera))", true);
        check("(|(name=display)(name=nope))", false);
        check("(!(name=display))", true);
        check("(!(name=camera))", false);
        check(
            "(&(|(name=camera)(name=display))(!(service.ranking>=10)))",
            true,
        );
    }

    #[test]
    fn empty_and_or_semantics() {
        check("(&)", true);
        check("(|)", false);
    }

    #[test]
    fn approx_ignores_case_and_space() {
        check("(name~=CAMERA)", true);
        check("(name~= Camera )", true);
        check("(name~=cam)", false);
    }

    #[test]
    fn substring_matching() {
        check("(name=cam*)", true);
        check("(name=*era)", true);
        check("(name=c*m*a)", true);
        check("(name=*am*)", true);
        check("(name=x*)", false);
        check("(name=*x)", false);
        check("(name=ca*xe*ra)", false);
    }

    #[test]
    fn substring_suffix_not_eaten_by_inner_piece() {
        // Value "abcab": (x=*ab) must match, and (x=*ab*ab) must too.
        let p = Properties::new().with("x", "abcab");
        assert!(Filter::parse("(x=*ab)").unwrap().matches(&p));
        assert!(Filter::parse("(x=ab*ab)").unwrap().matches(&p));
        assert!(!Filter::parse("(x=ab*c*ab*b)").unwrap().matches(&p));
    }

    #[test]
    fn list_properties_match_any_element() {
        check("(ports=images)", true);
        check("(ports=xysize)", true);
        check("(ports=nosuch)", false);
        check("(ports=ima*)", true);
    }

    #[test]
    fn escaped_specials_in_values() {
        let p = Properties::new().with("path", "a(b)*c\\d");
        let f = Filter::parse(r"(path=a\(b\)\*c\\d)").unwrap();
        assert!(f.matches(&p));
    }

    #[test]
    fn case_insensitive_keys() {
        check("(NAME=camera)", true);
        check("(Service.Ranking>=5)", true);
    }

    #[test]
    fn parse_errors_have_offsets() {
        for bad in [
            "",
            "(",
            "()",
            "(name)",
            "(name=camera",
            "(name=camera))",
            "(&(name=a)(name=b)",
            "(name>=a*)",
            "(=x)",
        ] {
            assert!(Filter::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for s in [
            "(name=camera)",
            "(&(a=1)(b=2))",
            "(|(a=1)(!(b=2)))",
            "(name=cam*ra)",
            "(name=*)",
            "(a~=x)",
            "(a>=3)",
            "(a<=4)",
            "(name=c*m*)",
        ] {
            let f = Filter::parse(s).unwrap();
            let round = Filter::parse(&f.to_string()).unwrap();
            assert_eq!(f, round, "{s} -> {f}");
        }
    }

    #[test]
    fn string_ordering_comparisons() {
        let p = Properties::new().with("ver", "beta");
        assert!(Filter::parse("(ver>=alpha)").unwrap().matches(&p));
        assert!(Filter::parse("(ver<=gamma)").unwrap().matches(&p));
        assert!(!Filter::parse("(ver>=gamma)").unwrap().matches(&p));
    }

    #[test]
    fn properties_overwrite_and_remove() {
        let mut p = Properties::new().with("k", 1);
        assert_eq!(p.insert("K", 2), Some(PropValue::Int(1)));
        assert_eq!(p.get("k"), Some(&PropValue::Int(2)));
        assert_eq!(p.remove("k"), Some(PropValue::Int(2)));
        assert!(p.is_empty());
    }
}
