//! Service tracking: the OSGi `ServiceTracker` pattern over the drained
//! event model.
//!
//! A [`ServiceTracker`] follows every service of one interface (optionally
//! narrowed by an LDAP filter), maintaining the currently-tracked set and
//! reporting adds/removals as [`TrackerEvent`]s when it is
//! [`poll`](ServiceTracker::poll)ed. Because the whole reproduction is a
//! deterministic single-threaded loop, tracking is a *diff* between polls
//! rather than a callback from a dispatcher thread — same contract, no
//! hidden concurrency.

use crate::framework::Framework;
use crate::ldap::Filter;
use crate::registry::{ServiceId, ServiceRef};
use std::collections::BTreeMap;
use std::fmt;

/// A change observed between two polls.
#[derive(Debug, Clone)]
pub enum TrackerEvent {
    /// A matching service appeared (or started matching after a property
    /// change).
    Added(ServiceRef),
    /// A matching service's properties changed while it kept matching.
    Modified(ServiceRef),
    /// A tracked service disappeared (or stopped matching).
    Removed(ServiceId),
}

/// Tracks the services of one interface. See the [module docs](self).
///
/// ```
/// use osgi::framework::Framework;
/// use osgi::ldap::Properties;
/// use osgi::tracker::{ServiceTracker, TrackerEvent};
/// use std::rc::Rc;
///
/// let mut fw = Framework::new();
/// let mut tracker = ServiceTracker::new("log.Service");
/// fw.registry_mut().register(&["log.Service"], Rc::new(()), Properties::new());
/// let events = tracker.poll(&fw);
/// assert!(matches!(events[0], TrackerEvent::Added(_)));
/// ```
pub struct ServiceTracker {
    interface: String,
    filter: Option<Filter>,
    tracked: BTreeMap<u64, ServiceRef>,
}

impl fmt::Debug for ServiceTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceTracker")
            .field("interface", &self.interface)
            .field("tracked", &self.tracked.len())
            .finish()
    }
}

impl ServiceTracker {
    /// Tracks every service of `interface`.
    pub fn new(interface: &str) -> Self {
        ServiceTracker {
            interface: interface.to_string(),
            filter: None,
            tracked: BTreeMap::new(),
        }
    }

    /// Narrows tracking with an LDAP filter.
    pub fn with_filter(mut self, filter: Filter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// The tracked interface.
    pub fn interface(&self) -> &str {
        &self.interface
    }

    /// Currently tracked services, best-ranked first.
    pub fn tracked(&self) -> Vec<ServiceRef> {
        let mut refs: Vec<ServiceRef> = self.tracked.values().cloned().collect();
        refs.sort_by(|a, b| {
            b.ranking()
                .cmp(&a.ranking())
                .then(a.id().raw().cmp(&b.id().raw()))
        });
        refs
    }

    /// The best-ranked tracked service.
    pub fn best(&self) -> Option<ServiceRef> {
        self.tracked().into_iter().next()
    }

    /// Number of tracked services.
    pub fn len(&self) -> usize {
        self.tracked.len()
    }

    /// True when nothing matches.
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty()
    }

    /// Diffs the registry against the tracked set, updating it and
    /// returning what changed since the last poll.
    pub fn poll(&mut self, fw: &Framework) -> Vec<TrackerEvent> {
        let current: BTreeMap<u64, ServiceRef> = fw
            .registry()
            .find(&self.interface, self.filter.as_ref())
            .into_iter()
            .map(|r| (r.id().raw(), r))
            .collect();
        let mut events = Vec::new();
        for (id, service_ref) in &current {
            match self.tracked.get(id) {
                None => events.push(TrackerEvent::Added(service_ref.clone())),
                Some(old) if old.properties() != service_ref.properties() => {
                    events.push(TrackerEvent::Modified(service_ref.clone()))
                }
                Some(_) => {}
            }
        }
        for id in self.tracked.keys() {
            if !current.contains_key(id) {
                events.push(TrackerEvent::Removed(ServiceId(*id)));
            }
        }
        self.tracked = current;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldap::Properties;
    use std::rc::Rc;

    fn fw() -> Framework {
        Framework::new()
    }

    #[test]
    fn tracks_adds_and_removals() {
        let mut fw = fw();
        let mut tracker = ServiceTracker::new("log.Service");
        assert!(tracker.poll(&fw).is_empty());
        let a = fw
            .registry_mut()
            .register(&["log.Service"], Rc::new(1u8), Properties::new());
        let events = tracker.poll(&fw);
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], TrackerEvent::Added(r) if r.id() == a));
        assert_eq!(tracker.len(), 1);
        fw.registry_mut().unregister(a);
        let events = tracker.poll(&fw);
        assert!(matches!(events[0], TrackerEvent::Removed(id) if id == a));
        assert!(tracker.is_empty());
    }

    #[test]
    fn filter_gates_tracking_and_property_changes_retrack() {
        let mut fw = fw();
        let mut tracker =
            ServiceTracker::new("log.Service").with_filter(Filter::parse("(level=error)").unwrap());
        let a = fw.registry_mut().register(
            &["log.Service"],
            Rc::new(1u8),
            Properties::new().with("level", "debug"),
        );
        assert!(tracker.poll(&fw).is_empty());
        // The service's properties change to match: tracked as an add.
        fw.registry_mut()
            .set_properties(a, Properties::new().with("level", "error"));
        let events = tracker.poll(&fw);
        assert!(matches!(events[0], TrackerEvent::Added(_)));
        // And back out: removed.
        fw.registry_mut()
            .set_properties(a, Properties::new().with("level", "warn"));
        let events = tracker.poll(&fw);
        assert!(matches!(events[0], TrackerEvent::Removed(id) if id == a));
    }

    #[test]
    fn modifications_inside_the_match_are_reported() {
        let mut fw = fw();
        let mut tracker = ServiceTracker::new("x");
        let a = fw
            .registry_mut()
            .register(&["x"], Rc::new(()), Properties::new().with("v", 1));
        tracker.poll(&fw);
        fw.registry_mut()
            .set_properties(a, Properties::new().with("v", 2));
        let events = tracker.poll(&fw);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], TrackerEvent::Modified(_)));
    }

    #[test]
    fn best_follows_ranking() {
        let mut fw = fw();
        let mut tracker = ServiceTracker::new("x");
        fw.registry_mut().register(
            &["x"],
            Rc::new(()),
            Properties::new().with("service.ranking", 1),
        );
        let high = fw.registry_mut().register(
            &["x"],
            Rc::new(()),
            Properties::new().with("service.ranking", 9),
        );
        tracker.poll(&fw);
        assert_eq!(tracker.best().unwrap().id(), high);
        assert_eq!(tracker.tracked().len(), 2);
    }
}
