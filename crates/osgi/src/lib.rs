//! # osgi — a minimal OSGi-like module framework
//!
//! The non-real-time substrate of the paper's split-container architecture:
//! a from-scratch reimplementation of the OSGi contracts the DRCom model
//! depends on.
//!
//! * [`framework`] — bundle lifecycle (install → resolve → start → stop →
//!   uninstall), package wiring with version ranges, activators, and the
//!   event queue driving the DRCR's reconfiguration loop.
//! * [`registry`] — the service registry with ranking-ordered discovery.
//! * [`ldap`] — full RFC 1960 LDAP filters over typed service properties.
//! * [`manifest`] / [`version`] — Import/Export-Package headers and OSGi
//!   version(-range) syntax.
//! * [`event`] — bundle and service events.
//! * [`ds`] — a Declarative Services runtime (the non-real-time component
//!   model the paper's DRCom extends).
//! * [`tracker`] — the `ServiceTracker` pattern over the drained event
//!   model.
//!
//! The framework is deliberately single-threaded: the whole reproduction is
//! a deterministic simulation, so services are `Rc<dyn Any>` and events are
//! drained synchronously rather than dispatched from worker threads.
//!
//! ```
//! use osgi::framework::{Framework, NoopActivator};
//! use osgi::manifest::BundleManifest;
//! use osgi::version::Version;
//!
//! # fn main() -> Result<(), osgi::framework::FrameworkError> {
//! let mut fw = Framework::new();
//! let bundle = fw.install(
//!     BundleManifest::new("demo.app", Version::new(1, 0, 0)),
//!     Box::new(NoopActivator),
//! )?;
//! fw.start(bundle)?;
//! # Ok(())
//! # }
//! ```

pub mod ds;
pub mod event;
pub mod framework;
pub mod ldap;
pub mod manifest;
pub mod registry;
pub mod tracker;
pub mod version;

pub use event::{
    BundleEvent, BundleEventKind, BundleId, FrameworkEvent, ServiceEvent, ServiceEventKind,
};
pub use framework::{
    BundleActivator, BundleContext, BundleState, Framework, FrameworkError, NoopActivator,
};
pub use ldap::{Filter, PropValue, Properties};
pub use manifest::BundleManifest;
pub use registry::{ServiceId, ServiceRef, ServiceRegistry};
pub use tracker::{ServiceTracker, TrackerEvent};
pub use version::{Version, VersionRange};
