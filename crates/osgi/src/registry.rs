//! The OSGi service registry.
//!
//! Services are plain Rust objects registered under one or more interface
//! names together with a [`Properties`] dictionary; consumers discover them
//! by interface name plus an optional [`Filter`] and rank results by
//! `service.ranking` (descending) then `service.id` (ascending) — the OSGi
//! selection order.
//!
//! The registry is single-threaded by design: the whole reproduction runs
//! inside one deterministic simulation loop, so services are held as
//! `Rc<dyn Any>` and handed out as cheap clones.

use crate::event::{ServiceEvent, ServiceEventKind};
use crate::ldap::{Filter, PropValue, Properties};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// The property key holding the interface names of a registration.
pub const OBJECT_CLASS: &str = "objectclass";
/// The property key holding the unique service id.
pub const SERVICE_ID: &str = "service.id";
/// The property key holding the integer ranking used for selection.
pub const SERVICE_RANKING: &str = "service.ranking";
/// The property key holding the owning bundle id, when registered through a
/// bundle context.
pub const SERVICE_BUNDLE: &str = "service.bundleid";

/// Unique id of a service registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub(crate) u64);

impl ServiceId {
    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service#{}", self.0)
    }
}

/// A reference to a registered service, as returned by queries.
///
/// Holds the id and a metadata snapshot; the service object itself is
/// fetched with [`ServiceRegistry::get`].
#[derive(Debug, Clone)]
pub struct ServiceRef {
    id: ServiceId,
    interfaces: Vec<String>,
    properties: Properties,
}

impl ServiceRef {
    /// The service id.
    pub fn id(&self) -> ServiceId {
        self.id
    }

    /// Interfaces the service was registered under.
    pub fn interfaces(&self) -> &[String] {
        &self.interfaces
    }

    /// Property snapshot taken at query time.
    pub fn properties(&self) -> &Properties {
        &self.properties
    }

    /// The service ranking (0 when unset).
    pub fn ranking(&self) -> i64 {
        match self.properties.get(SERVICE_RANKING) {
            Some(PropValue::Int(i)) => *i,
            _ => 0,
        }
    }
}

struct Entry {
    interfaces: Vec<String>,
    properties: Properties,
    object: Rc<dyn Any>,
    owner: Option<u64>,
}

/// The service registry. See the [module docs](self).
#[derive(Default)]
pub struct ServiceRegistry {
    next_id: u64,
    entries: BTreeMap<u64, Entry>,
    // Ascending service ids per interface name, so lookups touch only the
    // registrations under the queried interface instead of the whole table.
    by_interface: HashMap<String, Vec<u64>>,
    events: Vec<ServiceEvent>,
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("services", &self.entries.len())
            .finish()
    }
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `object` under the given interface names.
    ///
    /// The registry adds the standard `objectclass`, `service.id` and (if
    /// absent) `service.ranking` properties.
    ///
    /// # Panics
    ///
    /// Panics if `interfaces` is empty.
    pub fn register(
        &mut self,
        interfaces: &[&str],
        object: Rc<dyn Any>,
        mut properties: Properties,
    ) -> ServiceId {
        assert!(!interfaces.is_empty(), "a service needs an interface name");
        self.next_id += 1;
        let id = ServiceId(self.next_id);
        let names: Vec<String> = interfaces.iter().map(|s| s.to_string()).collect();
        properties.insert(
            OBJECT_CLASS,
            PropValue::List(names.iter().cloned().map(PropValue::Str).collect()),
        );
        properties.insert(SERVICE_ID, id.raw() as i64);
        if properties.get(SERVICE_RANKING).is_none() {
            properties.insert(SERVICE_RANKING, 0i64);
        }
        self.events.push(ServiceEvent {
            service: id,
            interfaces: names.clone(),
            properties: properties.clone(),
            kind: ServiceEventKind::Registered,
        });
        for name in &names {
            // `next_id` is monotonic, so a push keeps each list ascending.
            self.by_interface
                .entry(name.clone())
                .or_default()
                .push(id.raw());
        }
        self.entries.insert(
            id.raw(),
            Entry {
                interfaces: names,
                properties,
                object,
                owner: None,
            },
        );
        id
    }

    /// Registers a service on behalf of a bundle (auto-unregistered when the
    /// bundle stops).
    pub(crate) fn register_owned(
        &mut self,
        owner: u64,
        interfaces: &[&str],
        object: Rc<dyn Any>,
        mut properties: Properties,
    ) -> ServiceId {
        properties.insert(SERVICE_BUNDLE, owner as i64);
        let id = self.register(interfaces, object, properties);
        self.entries
            .get_mut(&id.raw())
            .expect("just inserted")
            .owner = Some(owner);
        id
    }

    /// Unregisters a service.
    ///
    /// Returns `true` if the service existed.
    pub fn unregister(&mut self, id: ServiceId) -> bool {
        match self.entries.remove(&id.raw()) {
            Some(entry) => {
                for name in &entry.interfaces {
                    if let Some(ids) = self.by_interface.get_mut(name) {
                        if let Ok(pos) = ids.binary_search(&id.raw()) {
                            ids.remove(pos);
                        }
                        if ids.is_empty() {
                            self.by_interface.remove(name);
                        }
                    }
                }
                self.events.push(ServiceEvent {
                    service: id,
                    interfaces: entry.interfaces,
                    properties: entry.properties,
                    kind: ServiceEventKind::Unregistering,
                });
                true
            }
            None => false,
        }
    }

    /// Unregisters every service owned by `owner`, returning how many.
    pub(crate) fn unregister_owned(&mut self, owner: u64) -> usize {
        let ids: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.owner == Some(owner))
            .map(|(id, _)| *id)
            .collect();
        for id in &ids {
            self.unregister(ServiceId(*id));
        }
        ids.len()
    }

    /// Replaces the properties of a registration (standard keys are
    /// reasserted), emitting a `Modified` event.
    ///
    /// Returns `false` if the service does not exist.
    pub fn set_properties(&mut self, id: ServiceId, mut properties: Properties) -> bool {
        let Some(entry) = self.entries.get_mut(&id.raw()) else {
            return false;
        };
        properties.insert(
            OBJECT_CLASS,
            PropValue::List(
                entry
                    .interfaces
                    .iter()
                    .cloned()
                    .map(PropValue::Str)
                    .collect(),
            ),
        );
        properties.insert(SERVICE_ID, id.raw() as i64);
        if properties.get(SERVICE_RANKING).is_none() {
            properties.insert(SERVICE_RANKING, 0i64);
        }
        if let Some(owner) = entry.owner {
            properties.insert(SERVICE_BUNDLE, owner as i64);
        }
        entry.properties = properties.clone();
        self.events.push(ServiceEvent {
            service: id,
            interfaces: entry.interfaces.clone(),
            properties,
            kind: ServiceEventKind::Modified,
        });
        true
    }

    /// Finds services registered under `interface`, optionally narrowed by
    /// an LDAP filter, ordered by descending ranking then ascending id.
    pub fn find(&self, interface: &str, filter: Option<&Filter>) -> Vec<ServiceRef> {
        let ids = match self.by_interface.get(interface) {
            Some(ids) => ids.as_slice(),
            None => return Vec::new(),
        };
        let mut found: Vec<ServiceRef> = ids
            .iter()
            .map(|id| (*id, self.entries.get(id).expect("indexed id is live")))
            .filter(|(_, e)| filter.is_none_or(|f| f.matches(&e.properties)))
            .map(|(id, e)| ServiceRef {
                id: ServiceId(id),
                interfaces: e.interfaces.clone(),
                properties: e.properties.clone(),
            })
            .collect();
        found.sort_by(|a, b| {
            b.ranking()
                .cmp(&a.ranking())
                .then(a.id().raw().cmp(&b.id().raw()))
        });
        found
    }

    /// The best match for `interface` (highest ranking, lowest id).
    pub fn find_one(&self, interface: &str, filter: Option<&Filter>) -> Option<ServiceRef> {
        self.find(interface, filter).into_iter().next()
    }

    /// Fetches the service object behind a reference, downcast to `T`.
    ///
    /// Returns `None` when the service is gone or is not a `T`.
    pub fn get<T: 'static>(&self, service: ServiceId) -> Option<Rc<T>> {
        let entry = self.entries.get(&service.raw())?;
        entry.object.clone().downcast::<T>().ok()
    }

    /// Fetches the service object without downcasting (for generic
    /// consumers such as the DS runtime's `bind` callbacks).
    pub fn get_any(&self, service: ServiceId) -> Option<Rc<dyn Any>> {
        self.entries.get(&service.raw()).map(|e| e.object.clone())
    }

    /// Current properties of a service.
    pub fn properties(&self, service: ServiceId) -> Option<&Properties> {
        self.entries.get(&service.raw()).map(|e| &e.properties)
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no services are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the pending service events, oldest first.
    pub fn drain_events(&mut self) -> Vec<ServiceEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Echo(String);

    fn reg() -> ServiceRegistry {
        ServiceRegistry::new()
    }

    #[test]
    fn register_find_get_roundtrip() {
        let mut r = reg();
        let id = r.register(
            &["test.Echo"],
            Rc::new(Echo("hi".into())),
            Properties::new().with("name", "a"),
        );
        let found = r.find("test.Echo", None);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id(), id);
        let svc = r.get::<Echo>(id).unwrap();
        assert_eq!(*svc, Echo("hi".into()));
    }

    #[test]
    fn standard_properties_are_set() {
        let mut r = reg();
        let id = r.register(&["a.B", "a.C"], Rc::new(()), Properties::new());
        let props = r.properties(id).unwrap();
        assert_eq!(
            props.get(SERVICE_ID),
            Some(&PropValue::Int(id.raw() as i64))
        );
        assert_eq!(props.get(SERVICE_RANKING), Some(&PropValue::Int(0)));
        let f = Filter::parse("(objectclass=a.C)").unwrap();
        assert!(f.matches(props));
    }

    #[test]
    fn filter_narrows_results() {
        let mut r = reg();
        r.register(&["x"], Rc::new(()), Properties::new().with("kind", "good"));
        r.register(&["x"], Rc::new(()), Properties::new().with("kind", "bad"));
        let f = Filter::parse("(kind=good)").unwrap();
        assert_eq!(r.find("x", Some(&f)).len(), 1);
        assert_eq!(r.find("x", None).len(), 2);
        assert_eq!(r.find("y", None).len(), 0);
    }

    #[test]
    fn ranking_orders_selection() {
        let mut r = reg();
        let low = r.register(
            &["x"],
            Rc::new(()),
            Properties::new().with(SERVICE_RANKING, 1),
        );
        let high = r.register(
            &["x"],
            Rc::new(()),
            Properties::new().with(SERVICE_RANKING, 10),
        );
        let tie = r.register(
            &["x"],
            Rc::new(()),
            Properties::new().with(SERVICE_RANKING, 10),
        );
        let found = r.find("x", None);
        assert_eq!(found[0].id(), high, "highest ranking first");
        assert_eq!(found[1].id(), tie, "ties broken by lower id — wait");
        assert_eq!(found[2].id(), low);
        // `high` has a lower id than `tie`, so it wins the tie.
        assert!(high.raw() < tie.raw());
        assert_eq!(r.find_one("x", None).unwrap().id(), high);
    }

    #[test]
    fn unregister_emits_event_and_removes() {
        let mut r = reg();
        let id = r.register(&["x"], Rc::new(()), Properties::new());
        r.drain_events();
        assert!(r.unregister(id));
        assert!(!r.unregister(id));
        assert!(r.get::<()>(id).is_none());
        let events = r.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ServiceEventKind::Unregistering);
        assert_eq!(events[0].service, id);
    }

    #[test]
    fn set_properties_emits_modified() {
        let mut r = reg();
        let id = r.register(&["x"], Rc::new(()), Properties::new().with("v", 1));
        r.drain_events();
        assert!(r.set_properties(id, Properties::new().with("v", 2)));
        let events = r.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ServiceEventKind::Modified);
        assert_eq!(r.properties(id).unwrap().get("v"), Some(&PropValue::Int(2)));
        // Standard keys survive the replacement.
        assert!(r.properties(id).unwrap().get(SERVICE_ID).is_some());
    }

    #[test]
    fn wrong_type_downcast_is_none() {
        let mut r = reg();
        let id = r.register(&["x"], Rc::new(Echo("hi".into())), Properties::new());
        assert!(r.get::<String>(id).is_none());
        assert!(r.get::<Echo>(id).is_some());
    }

    #[test]
    fn owned_services_unregister_together() {
        let mut r = reg();
        r.register_owned(7, &["x"], Rc::new(()), Properties::new());
        r.register_owned(7, &["y"], Rc::new(()), Properties::new());
        r.register_owned(8, &["z"], Rc::new(()), Properties::new());
        assert_eq!(r.unregister_owned(7), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.find("z", None).len(), 1);
    }
}
