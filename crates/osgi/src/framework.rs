//! The bundle framework: install / resolve / start / stop / update /
//! uninstall, with package wiring and the event queue.
//!
//! This is the "continuous deployment platform" the paper builds on: bundles
//! arrive and depart at run time, and every transition is observable through
//! [`Framework::drain_events`] so the DRCR executive can react.

use crate::event::{BundleEvent, BundleEventKind, BundleId, FrameworkEvent};
use crate::ldap::{Filter, Properties};
use crate::manifest::BundleManifest;
use crate::registry::{ServiceId, ServiceRef, ServiceRegistry};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;

/// Lifecycle state of a bundle (OSGi core specification, §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BundleState {
    /// Installed but imports not yet wired.
    Installed,
    /// Imports wired; ready to start.
    Resolved,
    /// Activator `start` in progress.
    Starting,
    /// Running.
    Active,
    /// Activator `stop` in progress.
    Stopping,
    /// Removed from the framework.
    Uninstalled,
}

/// Behaviour attached to a bundle, driven by the framework.
pub trait BundleActivator {
    /// Called when the bundle starts. Registering services and wiring
    /// listeners happens here.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the start; the bundle falls back to
    /// `Resolved`.
    fn start(&mut self, ctx: &mut BundleContext<'_>) -> Result<(), String>;

    /// Called when the bundle stops. Services registered through the
    /// context are removed automatically after this returns.
    fn stop(&mut self, _ctx: &mut BundleContext<'_>) {}
}

/// A no-op activator for library bundles.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopActivator;

impl BundleActivator for NoopActivator {
    fn start(&mut self, _ctx: &mut BundleContext<'_>) -> Result<(), String> {
        Ok(())
    }
}

/// A wiring decision: `importer` gets `package` from `exporter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire {
    /// The importing bundle.
    pub importer: BundleId,
    /// The exporting bundle.
    pub exporter: BundleId,
    /// The wired package name.
    pub package: String,
}

/// Errors from framework operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameworkError {
    /// No bundle with that id.
    NoSuchBundle(BundleId),
    /// The operation is invalid in the bundle's current state.
    InvalidState {
        /// The bundle.
        bundle: BundleId,
        /// What was attempted.
        operation: &'static str,
        /// Its state.
        state: BundleState,
    },
    /// Mandatory imports could not be wired.
    UnresolvedImports {
        /// The bundle that failed to resolve.
        bundle: BundleId,
        /// The missing package names.
        missing: Vec<String>,
    },
    /// The activator's `start` returned an error.
    ActivatorFailed {
        /// The bundle whose activator failed.
        bundle: BundleId,
        /// The activator's message.
        message: String,
    },
    /// A symbolic name is already installed.
    DuplicateName(String),
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::NoSuchBundle(b) => write!(f, "no such bundle {b}"),
            FrameworkError::InvalidState {
                bundle,
                operation,
                state,
            } => write!(f, "cannot {operation} {bundle} in state {state:?}"),
            FrameworkError::UnresolvedImports { bundle, missing } => {
                write!(f, "{bundle} has unresolved imports: {}", missing.join(", "))
            }
            FrameworkError::ActivatorFailed { bundle, message } => {
                write!(f, "activator of {bundle} failed: {message}")
            }
            FrameworkError::DuplicateName(name) => {
                write!(f, "bundle with symbolic name `{name}` already installed")
            }
        }
    }
}

impl std::error::Error for FrameworkError {}

struct Bundle {
    manifest: BundleManifest,
    state: BundleState,
    activator: Option<Box<dyn BundleActivator>>,
}

/// The OSGi framework. See the [module docs](self).
#[derive(Default)]
pub struct Framework {
    bundles: BTreeMap<u64, Bundle>,
    /// Symbolic name → live (non-uninstalled) bundle, for O(1) duplicate
    /// checks and name lookups instead of full-table scans.
    names: HashMap<String, u64>,
    /// Bundles currently in [`BundleState::Installed`], so `resolve` can
    /// gather its fixpoint candidates without scanning every bundle.
    installed: BTreeSet<u64>,
    next_bundle: u64,
    registry: ServiceRegistry,
    wires: Vec<Wire>,
    events: Vec<FrameworkEvent>,
}

impl fmt::Debug for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Framework")
            .field("bundles", &self.bundles.len())
            .field("services", &self.registry.len())
            .finish()
    }
}

impl Framework {
    /// Boots an empty framework.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a bundle; it starts in [`BundleState::Installed`].
    ///
    /// # Errors
    ///
    /// [`FrameworkError::DuplicateName`] if the symbolic name is taken by a
    /// non-uninstalled bundle.
    pub fn install(
        &mut self,
        manifest: BundleManifest,
        activator: Box<dyn BundleActivator>,
    ) -> Result<BundleId, FrameworkError> {
        if self.names.contains_key(&manifest.symbolic_name) {
            return Err(FrameworkError::DuplicateName(manifest.symbolic_name));
        }
        self.next_bundle += 1;
        let id = BundleId(self.next_bundle);
        let symbolic_name = manifest.symbolic_name.clone();
        self.names.insert(symbolic_name.clone(), id.raw());
        self.installed.insert(id.raw());
        self.bundles.insert(
            id.raw(),
            Bundle {
                manifest,
                state: BundleState::Installed,
                activator: Some(activator),
            },
        );
        self.emit_bundle(id, &symbolic_name, BundleEventKind::Installed);
        Ok(id)
    }

    /// Attempts to wire a bundle's imports; moves it to `Resolved`.
    ///
    /// Resolution considers exports of every bundle that is itself
    /// `Resolved`/`Active`, and runs to a fixpoint so chains of `Installed`
    /// bundles resolve together.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::UnresolvedImports`] listing the missing packages.
    pub fn resolve(&mut self, id: BundleId) -> Result<(), FrameworkError> {
        let bundle = self.get(id)?;
        match bundle.state {
            BundleState::Installed => {}
            BundleState::Resolved | BundleState::Active | BundleState::Starting => return Ok(()),
            state => {
                return Err(FrameworkError::InvalidState {
                    bundle: id,
                    operation: "resolve",
                    state,
                })
            }
        }
        // Greatest fixpoint: optimistically assume every installed bundle
        // resolves (so mutually dependent bundles can wire to each other),
        // then strike out any whose mandatory imports are unsatisfiable and
        // repeat until stable. When no candidate imports anything (the
        // overwhelmingly common case) the fixpoint is trivial, so the
        // resolved-set vectors it consults are never materialized and the
        // whole call is O(installed) instead of O(bundles).
        let mut newly: Vec<u64> = self.installed.iter().copied().collect();
        let any_imports = newly
            .iter()
            .any(|b| !self.bundles[b].manifest.imports.is_empty());
        let resolved: Vec<u64> = if any_imports {
            let already: Vec<u64> = self
                .bundles
                .iter()
                .filter(|(_, b)| {
                    matches!(
                        b.state,
                        BundleState::Resolved | BundleState::Active | BundleState::Starting
                    )
                })
                .map(|(i, _)| *i)
                .collect();
            loop {
                let resolved: Vec<u64> = already.iter().chain(newly.iter()).copied().collect();
                let before = newly.len();
                newly.retain(|&cand| {
                    self.bundles[&cand].manifest.imports.iter().all(|imp| {
                        imp.optional
                            || resolved
                                .iter()
                                .any(|&e| self.bundles[&e].manifest.satisfies(imp))
                    })
                });
                if newly.len() == before {
                    break;
                }
            }
            already.iter().chain(newly.iter()).copied().collect()
        } else {
            Vec::new()
        };
        if !newly.contains(&id.raw()) {
            let missing: Vec<String> = self.bundles[&id.raw()]
                .manifest
                .imports
                .iter()
                .filter(|imp| {
                    !imp.optional
                        && !resolved
                            .iter()
                            .any(|&e| self.bundles[&e].manifest.satisfies(imp))
                })
                .map(|imp| imp.package.clone())
                .collect();
            return Err(FrameworkError::UnresolvedImports {
                bundle: id,
                missing,
            });
        }
        // Record wires and flip states for everything that resolved.
        for &b in &newly {
            let importer = BundleId(b);
            let imports = self.bundles[&b].manifest.imports.clone();
            for imp in imports {
                if let Some((&exp, _)) = self
                    .bundles
                    .iter()
                    .find(|(i, bb)| resolved.contains(i) && bb.manifest.satisfies(&imp))
                {
                    self.wires.push(Wire {
                        importer,
                        exporter: BundleId(exp),
                        package: imp.package.clone(),
                    });
                }
            }
            self.installed.remove(&b);
            let bundle = self.bundles.get_mut(&b).expect("resolved bundle exists");
            bundle.state = BundleState::Resolved;
            let name = bundle.manifest.symbolic_name.clone();
            self.emit_bundle(importer, &name, BundleEventKind::Resolved);
        }
        Ok(())
    }

    /// Starts a bundle: resolves if needed, runs the activator.
    ///
    /// # Errors
    ///
    /// Resolution or activator failures; the bundle is left `Resolved` if
    /// its activator failed.
    pub fn start(&mut self, id: BundleId) -> Result<(), FrameworkError> {
        match self.get(id)?.state {
            BundleState::Active | BundleState::Starting => return Ok(()),
            BundleState::Installed => self.resolve(id)?,
            BundleState::Resolved => {}
            state => {
                return Err(FrameworkError::InvalidState {
                    bundle: id,
                    operation: "start",
                    state,
                })
            }
        }
        self.set_state(id, BundleState::Starting);
        let mut activator = self
            .bundles
            .get_mut(&id.raw())
            .expect("bundle exists")
            .activator
            .take()
            .expect("activator present outside start/stop");
        let result = {
            let mut ctx = BundleContext {
                framework: self,
                bundle: id,
            };
            activator.start(&mut ctx)
        };
        self.bundles
            .get_mut(&id.raw())
            .expect("bundle exists")
            .activator = Some(activator);
        match result {
            Ok(()) => {
                self.set_state(id, BundleState::Active);
                let name = self.symbolic_name(id).expect("exists").to_string();
                self.emit_bundle(id, &name, BundleEventKind::Started);
                Ok(())
            }
            Err(message) => {
                self.set_state(id, BundleState::Resolved);
                Err(FrameworkError::ActivatorFailed {
                    bundle: id,
                    message,
                })
            }
        }
    }

    /// Stops a bundle: runs the activator's `stop`, then removes every
    /// service it registered through its context.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::InvalidState`] unless the bundle is `Active`.
    pub fn stop(&mut self, id: BundleId) -> Result<(), FrameworkError> {
        match self.get(id)?.state {
            BundleState::Active => {}
            BundleState::Resolved | BundleState::Installed => return Ok(()),
            state => {
                return Err(FrameworkError::InvalidState {
                    bundle: id,
                    operation: "stop",
                    state,
                })
            }
        }
        self.set_state(id, BundleState::Stopping);
        let mut activator = self
            .bundles
            .get_mut(&id.raw())
            .expect("bundle exists")
            .activator
            .take()
            .expect("activator present outside start/stop");
        {
            let mut ctx = BundleContext {
                framework: self,
                bundle: id,
            };
            activator.stop(&mut ctx);
        }
        self.bundles
            .get_mut(&id.raw())
            .expect("bundle exists")
            .activator = Some(activator);
        self.registry.unregister_owned(id.raw());
        self.set_state(id, BundleState::Resolved);
        let name = self.symbolic_name(id).expect("exists").to_string();
        self.emit_bundle(id, &name, BundleEventKind::Stopped);
        Ok(())
    }

    /// Updates a bundle in place with a new manifest and activator. An
    /// active bundle is stopped first and **not** restarted (callers decide).
    ///
    /// # Errors
    ///
    /// Propagates stop errors; fails on uninstalled bundles.
    pub fn update(
        &mut self,
        id: BundleId,
        manifest: BundleManifest,
        activator: Box<dyn BundleActivator>,
    ) -> Result<(), FrameworkError> {
        if self.get(id)?.state == BundleState::Active {
            self.stop(id)?;
        }
        let bundle = self.bundles.get_mut(&id.raw()).expect("bundle exists");
        let old_name = bundle.manifest.symbolic_name.clone();
        bundle.manifest = manifest;
        let new_name = bundle.manifest.symbolic_name.clone();
        bundle.activator = Some(activator);
        bundle.state = BundleState::Installed;
        if self.names.get(&old_name) == Some(&id.raw()) {
            self.names.remove(&old_name);
        }
        self.names.insert(new_name, id.raw());
        self.installed.insert(id.raw());
        self.wires.retain(|w| w.importer != id);
        let name = self.symbolic_name(id).expect("exists").to_string();
        self.emit_bundle(id, &name, BundleEventKind::Updated);
        Ok(())
    }

    /// Uninstalls a bundle (stopping it first if active).
    ///
    /// # Errors
    ///
    /// Propagates stop errors; fails on already-uninstalled bundles.
    pub fn uninstall(&mut self, id: BundleId) -> Result<(), FrameworkError> {
        let state = self.get(id)?.state;
        if state == BundleState::Uninstalled {
            return Err(FrameworkError::InvalidState {
                bundle: id,
                operation: "uninstall",
                state,
            });
        }
        if state == BundleState::Active {
            self.stop(id)?;
        }
        self.set_state(id, BundleState::Uninstalled);
        self.wires.retain(|w| w.importer != id && w.exporter != id);
        let name = self.symbolic_name(id).expect("exists").to_string();
        if self.names.get(&name) == Some(&id.raw()) {
            self.names.remove(&name);
        }
        self.emit_bundle(id, &name, BundleEventKind::Uninstalled);
        Ok(())
    }

    /// State of a bundle.
    pub fn bundle_state(&self, id: BundleId) -> Option<BundleState> {
        self.bundles.get(&id.raw()).map(|b| b.state)
    }

    /// Symbolic name of a bundle.
    pub fn symbolic_name(&self, id: BundleId) -> Option<&str> {
        self.bundles
            .get(&id.raw())
            .map(|b| b.manifest.symbolic_name.as_str())
    }

    /// Finds an installed bundle by symbolic name.
    pub fn bundle_by_name(&self, symbolic_name: &str) -> Option<BundleId> {
        self.names.get(symbolic_name).map(|id| BundleId(*id))
    }

    /// Resolves a raw id (e.g. from a service's `service.bundle` property)
    /// to a live, non-uninstalled bundle.
    pub fn bundle_by_id(&self, raw: u64) -> Option<BundleId> {
        self.bundles
            .get(&raw)
            .filter(|b| b.state != BundleState::Uninstalled)
            .map(|_| BundleId(raw))
    }

    /// Ids of all non-uninstalled bundles, in install order.
    pub fn bundles(&self) -> Vec<BundleId> {
        self.bundles
            .iter()
            .filter(|(_, b)| b.state != BundleState::Uninstalled)
            .map(|(id, _)| BundleId(*id))
            .collect()
    }

    /// The current package wires.
    pub fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// The service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// The service registry, mutably (for framework-level services).
    pub fn registry_mut(&mut self) -> &mut ServiceRegistry {
        &mut self.registry
    }

    /// Drains all pending framework events (bundle events interleaved with
    /// service events, in the order they occurred).
    pub fn drain_events(&mut self) -> Vec<FrameworkEvent> {
        // Service events live in the registry; merge preserving order is not
        // possible across queues, so pull registry events in and return the
        // combined log. Registry events caused by framework operations are
        // appended where the operation happened thanks to eager merging.
        self.merge_service_events();
        std::mem::take(&mut self.events)
    }

    fn merge_service_events(&mut self) {
        for e in self.registry.drain_events() {
            self.events.push(FrameworkEvent::Service(e));
        }
    }

    fn emit_bundle(&mut self, id: BundleId, name: &str, kind: BundleEventKind) {
        // Pull any service events that happened before this transition so
        // ordering stays faithful.
        self.merge_service_events();
        self.events.push(FrameworkEvent::Bundle(BundleEvent {
            bundle: id,
            symbolic_name: name.to_string(),
            kind,
        }));
    }

    fn get(&self, id: BundleId) -> Result<&Bundle, FrameworkError> {
        self.bundles
            .get(&id.raw())
            .ok_or(FrameworkError::NoSuchBundle(id))
    }

    fn set_state(&mut self, id: BundleId, state: BundleState) {
        if let Some(b) = self.bundles.get_mut(&id.raw()) {
            b.state = state;
            if state == BundleState::Installed {
                self.installed.insert(id.raw());
            } else {
                self.installed.remove(&id.raw());
            }
        }
    }
}

/// The capabilities handed to a [`BundleActivator`] while it runs.
pub struct BundleContext<'a> {
    framework: &'a mut Framework,
    bundle: BundleId,
}

impl fmt::Debug for BundleContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BundleContext")
            .field("bundle", &self.bundle)
            .finish()
    }
}

impl BundleContext<'_> {
    /// The bundle this context belongs to.
    pub fn bundle(&self) -> BundleId {
        self.bundle
    }

    /// Registers a service owned by this bundle; it is unregistered
    /// automatically when the bundle stops.
    pub fn register_service(
        &mut self,
        interfaces: &[&str],
        object: Rc<dyn Any>,
        properties: Properties,
    ) -> ServiceId {
        self.framework
            .registry
            .register_owned(self.bundle.raw(), interfaces, object, properties)
    }

    /// Finds services (same contract as [`ServiceRegistry::find`]).
    pub fn find_services(&self, interface: &str, filter: Option<&Filter>) -> Vec<ServiceRef> {
        self.framework.registry.find(interface, filter)
    }

    /// Fetches a service object.
    pub fn get_service<T: 'static>(&self, id: ServiceId) -> Option<Rc<T>> {
        self.framework.registry.get(id)
    }

    /// The whole framework, for advanced activators (e.g. the DRCR bundle
    /// reacting to other bundles).
    pub fn framework(&mut self) -> &mut Framework {
        self.framework
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BundleEventKind as K;
    use crate::version::{Version, VersionRange};
    use std::cell::RefCell;

    fn manifest(name: &str) -> BundleManifest {
        BundleManifest::new(name, Version::new(1, 0, 0))
    }

    #[test]
    fn install_start_stop_lifecycle() {
        let mut fw = Framework::new();
        let id = fw.install(manifest("a"), Box::new(NoopActivator)).unwrap();
        assert_eq!(fw.bundle_state(id), Some(BundleState::Installed));
        fw.start(id).unwrap();
        assert_eq!(fw.bundle_state(id), Some(BundleState::Active));
        fw.stop(id).unwrap();
        assert_eq!(fw.bundle_state(id), Some(BundleState::Resolved));
        fw.uninstall(id).unwrap();
        assert_eq!(fw.bundle_state(id), Some(BundleState::Uninstalled));
        let kinds: Vec<K> = fw
            .drain_events()
            .into_iter()
            .filter_map(|e| match e {
                FrameworkEvent::Bundle(b) => Some(b.kind),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                K::Installed,
                K::Resolved,
                K::Started,
                K::Stopped,
                K::Uninstalled
            ]
        );
    }

    #[test]
    fn duplicate_symbolic_names_rejected_until_uninstalled() {
        let mut fw = Framework::new();
        let id = fw.install(manifest("a"), Box::new(NoopActivator)).unwrap();
        assert!(matches!(
            fw.install(manifest("a"), Box::new(NoopActivator)),
            Err(FrameworkError::DuplicateName(_))
        ));
        fw.uninstall(id).unwrap();
        fw.install(manifest("a"), Box::new(NoopActivator)).unwrap();
    }

    #[test]
    fn imports_block_start_until_exporter_arrives() {
        let mut fw = Framework::new();
        let consumer = fw
            .install(
                manifest("consumer")
                    .imports("lib.api", VersionRange::at_least(Version::new(1, 0, 0))),
                Box::new(NoopActivator),
            )
            .unwrap();
        let err = fw.start(consumer).unwrap_err();
        assert!(
            matches!(err, FrameworkError::UnresolvedImports { ref missing, .. }
            if missing == &vec!["lib.api".to_string()])
        );
        let producer = fw
            .install(
                manifest("producer").exports("lib.api", Version::new(1, 2, 0)),
                Box::new(NoopActivator),
            )
            .unwrap();
        fw.start(consumer).unwrap();
        assert_eq!(fw.bundle_state(consumer), Some(BundleState::Active));
        // The wire is recorded.
        assert!(fw
            .wires()
            .iter()
            .any(|w| w.importer == consumer && w.exporter == producer && w.package == "lib.api"));
    }

    #[test]
    fn version_range_respected_in_wiring() {
        let mut fw = Framework::new();
        fw.install(
            manifest("old").exports("lib.api", Version::new(0, 9, 0)),
            Box::new(NoopActivator),
        )
        .unwrap();
        let consumer = fw
            .install(
                manifest("consumer").imports("lib.api", "[1.0,2.0)".parse().unwrap()),
                Box::new(NoopActivator),
            )
            .unwrap();
        assert!(fw.start(consumer).is_err());
    }

    #[test]
    fn optional_imports_do_not_block() {
        let mut fw = Framework::new();
        let id = fw
            .install(
                manifest("opt").imports_optionally("ghost.api", VersionRange::any()),
                Box::new(NoopActivator),
            )
            .unwrap();
        fw.start(id).unwrap();
    }

    #[test]
    fn mutually_dependent_bundles_resolve_together() {
        let mut fw = Framework::new();
        let a = fw
            .install(
                manifest("a")
                    .exports("a.api", Version::new(1, 0, 0))
                    .imports("b.api", VersionRange::any()),
                Box::new(NoopActivator),
            )
            .unwrap();
        let b = fw
            .install(
                manifest("b")
                    .exports("b.api", Version::new(1, 0, 0))
                    .imports("a.api", VersionRange::any()),
                Box::new(NoopActivator),
            )
            .unwrap();
        fw.start(a).unwrap();
        assert_eq!(fw.bundle_state(b), Some(BundleState::Resolved));
    }

    struct RegisteringActivator;

    impl BundleActivator for RegisteringActivator {
        fn start(&mut self, ctx: &mut BundleContext<'_>) -> Result<(), String> {
            ctx.register_service(&["test.Svc"], Rc::new(42u32), Properties::new());
            Ok(())
        }
    }

    #[test]
    fn services_vanish_when_bundle_stops() {
        let mut fw = Framework::new();
        let id = fw
            .install(manifest("svc"), Box::new(RegisteringActivator))
            .unwrap();
        fw.start(id).unwrap();
        assert_eq!(fw.registry().find("test.Svc", None).len(), 1);
        fw.stop(id).unwrap();
        assert_eq!(fw.registry().find("test.Svc", None).len(), 0);
    }

    struct FailingActivator;

    impl BundleActivator for FailingActivator {
        fn start(&mut self, _ctx: &mut BundleContext<'_>) -> Result<(), String> {
            Err("boom".into())
        }
    }

    #[test]
    fn failed_activator_leaves_bundle_resolved() {
        let mut fw = Framework::new();
        let id = fw
            .install(manifest("bad"), Box::new(FailingActivator))
            .unwrap();
        let err = fw.start(id).unwrap_err();
        assert!(matches!(err, FrameworkError::ActivatorFailed { .. }));
        assert_eq!(fw.bundle_state(id), Some(BundleState::Resolved));
    }

    struct CountingActivator(Rc<RefCell<(u32, u32)>>);

    impl BundleActivator for CountingActivator {
        fn start(&mut self, _ctx: &mut BundleContext<'_>) -> Result<(), String> {
            self.0.borrow_mut().0 += 1;
            Ok(())
        }
        fn stop(&mut self, _ctx: &mut BundleContext<'_>) {
            self.0.borrow_mut().1 += 1;
        }
    }

    #[test]
    fn update_stops_and_reinstalls() {
        let counts: Rc<RefCell<(u32, u32)>> = Rc::default();
        let mut fw = Framework::new();
        let id = fw
            .install(manifest("c"), Box::new(CountingActivator(counts.clone())))
            .unwrap();
        fw.start(id).unwrap();
        fw.update(
            id,
            manifest("c2"),
            Box::new(CountingActivator(counts.clone())),
        )
        .unwrap();
        assert_eq!(*counts.borrow(), (1, 1));
        assert_eq!(fw.bundle_state(id), Some(BundleState::Installed));
        assert_eq!(fw.symbolic_name(id), Some("c2"));
        fw.start(id).unwrap();
        assert_eq!(*counts.borrow(), (2, 1));
    }

    #[test]
    fn start_stop_are_idempotent_where_specified() {
        let mut fw = Framework::new();
        let id = fw.install(manifest("a"), Box::new(NoopActivator)).unwrap();
        fw.start(id).unwrap();
        fw.start(id).unwrap(); // already active: fine
        fw.stop(id).unwrap();
        fw.stop(id).unwrap(); // already stopped: fine
        fw.uninstall(id).unwrap();
        assert!(fw.uninstall(id).is_err());
        assert!(fw.start(id).is_err());
    }

    #[test]
    fn bundle_lookup_by_name() {
        let mut fw = Framework::new();
        let id = fw
            .install(manifest("find.me"), Box::new(NoopActivator))
            .unwrap();
        assert_eq!(fw.bundle_by_name("find.me"), Some(id));
        assert_eq!(fw.bundle_by_name("nope"), None);
        fw.uninstall(id).unwrap();
        assert_eq!(fw.bundle_by_name("find.me"), None);
    }
}
