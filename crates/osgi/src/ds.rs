//! Declarative Services (DS) — the non-real-time component model the paper
//! builds its analogy on.
//!
//! OSGi R4's Declarative Services lets a bundle declare *service
//! components*: plain objects whose required service **references** are
//! bound by a runtime (the SCR) instead of by lookup code, and which are
//! activated exactly while all mandatory references are satisfied. The
//! paper's §2.1 credits DS (and Cervantes & Hall's Service Binder) for the
//! dynamic-availability machinery, then extends the idea to real-time
//! contracts — so this substrate module implements the original,
//! non-real-time half:
//!
//! * [`DsComponent`] — the component description: provided service,
//!   required references (cardinality, binding policy, optional LDAP
//!   target filter).
//! * [`DsInstance`] — the component behaviour: `activate` / `deactivate`
//!   plus `bind` / `unbind` callbacks.
//! * [`ScrRuntime`] — the Service Component Runtime: reacts to registry
//!   events, tracks reference satisfaction, activates/deactivates
//!   instances, and registers provided services on their behalf.
//!
//! Differences from the paper's DRCR are instructive and deliberate: DS
//! matches references by *service interface + filter* (late-bound, Java
//! flavored), has no notion of resource admission, and its policy is fixed
//! — precisely the limitations §2.1 lists as motivation for DRCom.

use crate::event::{FrameworkEvent, ServiceEventKind};
use crate::framework::Framework;
use crate::ldap::{Filter, Properties};
use crate::registry::{ServiceId, ServiceRef};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// How many bound services a reference needs/accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// `0..1` — bind if available, stay satisfied without.
    Optional,
    /// `1..1` — exactly one binding required.
    Mandatory,
    /// `0..n` — bind all matches, stay satisfied without.
    Multiple,
    /// `1..n` — at least one binding required.
    AtLeastOne,
}

impl Cardinality {
    /// Whether zero bindings still satisfies the reference.
    pub fn satisfied_by_zero(self) -> bool {
        matches!(self, Cardinality::Optional | Cardinality::Multiple)
    }

    /// Whether more than one binding is accepted.
    pub fn binds_many(self) -> bool {
        matches!(self, Cardinality::Multiple | Cardinality::AtLeastOne)
    }
}

/// How a bound reference reacts to a better/replacement service appearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingPolicy {
    /// Rebinding requires deactivating and reactivating the component.
    Static,
    /// The runtime rebinds in place via `bind`/`unbind` callbacks.
    Dynamic,
}

/// A declared dependency on a service.
#[derive(Debug, Clone)]
pub struct DsReference {
    /// Reference name passed to `bind`/`unbind`.
    pub name: String,
    /// Required service interface.
    pub interface: String,
    /// Cardinality (default mandatory).
    pub cardinality: Cardinality,
    /// Binding policy (default static).
    pub policy: BindingPolicy,
    /// Optional LDAP target filter narrowing candidates.
    pub target: Option<Filter>,
}

impl DsReference {
    /// A mandatory, statically bound reference.
    pub fn mandatory(name: &str, interface: &str) -> Self {
        DsReference {
            name: name.to_string(),
            interface: interface.to_string(),
            cardinality: Cardinality::Mandatory,
            policy: BindingPolicy::Static,
            target: None,
        }
    }

    /// Sets the cardinality.
    pub fn with_cardinality(mut self, cardinality: Cardinality) -> Self {
        self.cardinality = cardinality;
        self
    }

    /// Sets the binding policy.
    pub fn with_policy(mut self, policy: BindingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the target filter.
    pub fn with_target(mut self, filter: Filter) -> Self {
        self.target = Some(filter);
        self
    }
}

/// Behaviour of a service component instance.
pub trait DsInstance {
    /// Called when all mandatory references are bound.
    fn activate(&mut self) {}

    /// Called when the component is being deactivated.
    fn deactivate(&mut self) {}

    /// A service was bound to the named reference.
    fn bind(&mut self, _reference: &str, _service: Rc<dyn Any>) {}

    /// A service is being unbound from the named reference.
    fn unbind(&mut self, _reference: &str, _service_id: ServiceId) {}

    /// The object to register under the component's provided interface
    /// while active, if any.
    fn provided_service(&self) -> Option<Rc<dyn Any>> {
        None
    }
}

/// A service component description + instance factory.
pub struct DsComponent {
    /// Unique component name.
    pub name: String,
    /// Interface registered while the component is active, if any.
    pub provides: Option<String>,
    /// Service properties attached to the provided registration.
    pub properties: Properties,
    /// Declared references.
    pub references: Vec<DsReference>,
    factory: Box<dyn Fn() -> Box<dyn DsInstance>>,
}

impl fmt::Debug for DsComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsComponent")
            .field("name", &self.name)
            .field("provides", &self.provides)
            .field("references", &self.references.len())
            .finish()
    }
}

impl DsComponent {
    /// Starts a description for a component named `name`.
    pub fn new(name: &str, factory: impl Fn() -> Box<dyn DsInstance> + 'static) -> Self {
        DsComponent {
            name: name.to_string(),
            provides: None,
            properties: Properties::new(),
            references: Vec::new(),
            factory: Box::new(factory),
        }
    }

    /// Declares the provided service interface.
    pub fn provides(mut self, interface: &str) -> Self {
        self.provides = Some(interface.to_string());
        self
    }

    /// Attaches registration properties.
    pub fn with_properties(mut self, properties: Properties) -> Self {
        self.properties = properties;
        self
    }

    /// Adds a reference.
    pub fn requires(mut self, reference: DsReference) -> Self {
        self.references.push(reference);
        self
    }

    /// Parses a component description from the SCR XML grammar
    /// (`OSGI-INF/component.xml`), pairing it with the given instance
    /// factory:
    ///
    /// ```xml
    /// <scr:component name="logger">
    ///   <implementation class="com.acme.Logger"/>
    ///   <service><provide interface="log.Service"/></service>
    ///   <property name="level" type="String" value="info"/>
    ///   <reference name="store" interface="store.Service"
    ///              cardinality="1..1" policy="dynamic"
    ///              target="(kind=disk)"/>
    /// </scr:component>
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`DsXmlError`] for malformed documents or bad attribute
    /// values.
    pub fn from_xml(
        xml: &str,
        factory: impl Fn() -> Box<dyn DsInstance> + 'static,
    ) -> Result<Self, DsXmlError> {
        let root = xmlite::parse(xml).map_err(|e| DsXmlError(e.to_string()))?;
        if root.local_name() != "component" {
            return Err(DsXmlError(format!(
                "root element must be `component`, found `{}`",
                root.name
            )));
        }
        let name = root
            .attr("name")
            .ok_or_else(|| DsXmlError("component needs a `name`".into()))?;
        let mut component = DsComponent::new(name, factory);
        if let Some(service) = root.child_named("service") {
            let provide = service
                .child_named("provide")
                .ok_or_else(|| DsXmlError("`service` needs a `provide` child".into()))?;
            let interface = provide
                .attr("interface")
                .ok_or_else(|| DsXmlError("`provide` needs an `interface`".into()))?;
            component = component.provides(interface);
        }
        let mut properties = Properties::new();
        for prop in root.children_named("property") {
            let pname = prop
                .attr("name")
                .ok_or_else(|| DsXmlError("`property` needs a `name`".into()))?;
            let raw = prop
                .attr("value")
                .ok_or_else(|| DsXmlError("`property` needs a `value`".into()))?;
            let value = match prop.attr("type").unwrap_or("String") {
                "String" => crate::ldap::PropValue::Str(raw.to_string()),
                "Integer" | "Long" => raw
                    .trim()
                    .parse::<i64>()
                    .map(crate::ldap::PropValue::Int)
                    .map_err(|_| DsXmlError(format!("`{raw}` is not an integer")))?,
                "Double" | "Float" => raw
                    .trim()
                    .parse::<f64>()
                    .map(crate::ldap::PropValue::Float)
                    .map_err(|_| DsXmlError(format!("`{raw}` is not a number")))?,
                "Boolean" => raw
                    .trim()
                    .parse::<bool>()
                    .map(crate::ldap::PropValue::Bool)
                    .map_err(|_| DsXmlError(format!("`{raw}` is not a boolean")))?,
                other => return Err(DsXmlError(format!("unknown property type `{other}`"))),
            };
            properties.insert(pname, value);
        }
        component = component.with_properties(properties);
        for reference in root.children_named("reference") {
            let rname = reference
                .attr("name")
                .ok_or_else(|| DsXmlError("`reference` needs a `name`".into()))?;
            let interface = reference
                .attr("interface")
                .ok_or_else(|| DsXmlError("`reference` needs an `interface`".into()))?;
            let mut r = DsReference::mandatory(rname, interface);
            if let Some(card) = reference.attr("cardinality") {
                r = r.with_cardinality(match card {
                    "0..1" => Cardinality::Optional,
                    "1..1" => Cardinality::Mandatory,
                    "0..n" => Cardinality::Multiple,
                    "1..n" => Cardinality::AtLeastOne,
                    other => return Err(DsXmlError(format!("unknown cardinality `{other}`"))),
                });
            }
            if let Some(policy) = reference.attr("policy") {
                r = r.with_policy(match policy {
                    "static" => BindingPolicy::Static,
                    "dynamic" => BindingPolicy::Dynamic,
                    other => return Err(DsXmlError(format!("unknown policy `{other}`"))),
                });
            }
            if let Some(target) = reference.attr("target") {
                let filter = Filter::parse(target)
                    .map_err(|e| DsXmlError(format!("bad target filter: {e}")))?;
                r = r.with_target(filter);
            }
            component = component.requires(r);
        }
        Ok(component)
    }
}

/// A failure parsing an SCR component document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsXmlError(String);

impl fmt::Display for DsXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SCR component XML: {}", self.0)
    }
}

impl std::error::Error for DsXmlError {}

/// State of a managed component, mirroring the DS specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsState {
    /// Mandatory references unsatisfied.
    Unsatisfied,
    /// Instance active (and provided service registered).
    Active,
}

struct Managed {
    component: DsComponent,
    state: DsState,
    instance: Option<Box<dyn DsInstance>>,
    bound: BTreeMap<String, Vec<ServiceId>>,
    registration: Option<ServiceId>,
}

/// The Service Component Runtime. See the [module docs](self).
#[derive(Default)]
pub struct ScrRuntime {
    components: BTreeMap<String, Managed>,
}

impl fmt::Debug for ScrRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScrRuntime")
            .field("components", &self.components.len())
            .finish()
    }
}

impl ScrRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component description and immediately tries to satisfy
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if a component with the same name is already managed.
    pub fn add_component(&mut self, fw: &mut Framework, component: DsComponent) {
        assert!(
            !self.components.contains_key(&component.name),
            "duplicate DS component `{}`",
            component.name
        );
        let name = component.name.clone();
        self.components.insert(
            name,
            Managed {
                component,
                state: DsState::Unsatisfied,
                instance: None,
                bound: BTreeMap::new(),
                registration: None,
            },
        );
        self.resolve(fw);
    }

    /// Removes a component, deactivating it if active.
    pub fn remove_component(&mut self, fw: &mut Framework, name: &str) {
        if let Some(mut managed) = self.components.remove(name) {
            deactivate(&mut managed, fw);
        }
        self.resolve(fw);
    }

    /// Current state of a managed component.
    pub fn state(&self, name: &str) -> Option<DsState> {
        self.components.get(name).map(|m| m.state)
    }

    /// Services currently bound to a component's reference.
    pub fn bound_to(&self, component: &str, reference: &str) -> Vec<ServiceId> {
        self.components
            .get(component)
            .and_then(|m| m.bound.get(reference).cloned())
            .unwrap_or_default()
    }

    /// Drains framework events and re-resolves. Call after anything that
    /// may have changed the registry.
    pub fn process(&mut self, fw: &mut Framework) {
        let mut relevant = false;
        for event in fw.drain_events() {
            match event {
                FrameworkEvent::Service(e)
                    if matches!(
                        e.kind,
                        ServiceEventKind::Registered
                            | ServiceEventKind::Unregistering
                            | ServiceEventKind::Modified
                    ) =>
                {
                    relevant = true;
                }
                _ => {}
            }
        }
        if relevant {
            self.resolve(fw);
        }
    }

    /// Re-evaluates satisfaction for all components to a fixpoint (a
    /// component's provided service can satisfy another's reference).
    pub fn resolve(&mut self, fw: &mut Framework) {
        loop {
            let mut changed = false;
            let names: Vec<String> = self.components.keys().cloned().collect();
            for name in names {
                let managed = self.components.get_mut(&name).expect("present");
                let satisfied = references_satisfiable(&managed.component, fw);
                match (managed.state, satisfied) {
                    (DsState::Unsatisfied, true) => {
                        activate(managed, fw);
                        changed = true;
                    }
                    (DsState::Active, false) => {
                        deactivate(managed, fw);
                        changed = true;
                    }
                    (DsState::Active, true) => {
                        // Dynamic references: rebind in place if the bound
                        // set drifted from the current best matches.
                        if rebind_dynamic(managed, fw) {
                            changed = true;
                        }
                    }
                    (DsState::Unsatisfied, false) => {}
                }
            }
            if !changed {
                return;
            }
        }
    }
}

fn candidates(reference: &DsReference, fw: &Framework) -> Vec<ServiceRef> {
    fw.registry()
        .find(&reference.interface, reference.target.as_ref())
}

fn references_satisfiable(component: &DsComponent, fw: &Framework) -> bool {
    component
        .references
        .iter()
        .all(|r| r.cardinality.satisfied_by_zero() || !candidates(r, fw).is_empty())
}

fn activate(managed: &mut Managed, fw: &mut Framework) {
    let mut instance = (managed.component.factory)();
    managed.bound.clear();
    for reference in &managed.component.references {
        let found = candidates(reference, fw);
        let take = if reference.cardinality.binds_many() {
            found.len()
        } else {
            found.len().min(1)
        };
        let mut ids = Vec::new();
        for service_ref in found.into_iter().take(take) {
            if let Some(obj) = raw_object(fw, service_ref.id()) {
                instance.bind(&reference.name, obj);
            }
            ids.push(service_ref.id());
        }
        managed.bound.insert(reference.name.clone(), ids);
    }
    instance.activate();
    if let Some(interface) = &managed.component.provides {
        if let Some(service) = instance.provided_service() {
            let mut props = managed.component.properties.clone();
            props.insert("component.name", managed.component.name.as_str());
            managed.registration = Some(fw.registry_mut().register(
                &[interface.as_str()],
                service,
                props,
            ));
        }
    }
    managed.instance = Some(instance);
    managed.state = DsState::Active;
}

fn deactivate(managed: &mut Managed, fw: &mut Framework) {
    if let Some(mut instance) = managed.instance.take() {
        if let Some(reg) = managed.registration.take() {
            fw.registry_mut().unregister(reg);
        }
        for (name, ids) in std::mem::take(&mut managed.bound) {
            for id in ids {
                instance.unbind(&name, id);
            }
        }
        instance.deactivate();
    }
    managed.state = DsState::Unsatisfied;
}

/// For dynamic references, reconcile the bound set with current candidates.
/// Returns true if any rebinding happened.
fn rebind_dynamic(managed: &mut Managed, fw: &mut Framework) -> bool {
    let mut any = false;
    let refs: Vec<DsReference> = managed
        .component
        .references
        .iter()
        .filter(|r| r.policy == BindingPolicy::Dynamic)
        .cloned()
        .collect();
    for reference in refs {
        let current = managed
            .bound
            .get(&reference.name)
            .cloned()
            .unwrap_or_default();
        let found = candidates(&reference, fw);
        let want: Vec<ServiceId> = if reference.cardinality.binds_many() {
            found.iter().map(|r| r.id()).collect()
        } else {
            found.iter().map(|r| r.id()).take(1).collect()
        };
        if current == want {
            continue;
        }
        let instance = managed.instance.as_mut().expect("active instance");
        for id in current.iter().filter(|id| !want.contains(id)) {
            instance.unbind(&reference.name, *id);
            any = true;
        }
        for id in want.iter().filter(|id| !current.contains(id)) {
            if let Some(obj) = raw_object(fw, *id) {
                instance.bind(&reference.name, obj);
                any = true;
            }
        }
        managed.bound.insert(reference.name.clone(), want);
    }
    any
}

/// Fetches the raw `Rc<dyn Any>` behind a service id.
fn raw_object(fw: &Framework, id: ServiceId) -> Option<Rc<dyn Any>> {
    // The registry stores `Rc<dyn Any>`; `get::<T>` downcasts, which we do
    // not want here. Use the typed accessor with the erased type.
    fw.registry().get_any(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use crate::ldap::Filter;
    use std::cell::RefCell;

    #[derive(Default)]
    struct Probe {
        activations: u32,
        deactivations: u32,
        binds: Vec<String>,
        unbinds: Vec<String>,
    }

    struct ProbeInstance(Rc<RefCell<Probe>>);

    impl DsInstance for ProbeInstance {
        fn activate(&mut self) {
            self.0.borrow_mut().activations += 1;
        }
        fn deactivate(&mut self) {
            self.0.borrow_mut().deactivations += 1;
        }
        fn bind(&mut self, reference: &str, _service: Rc<dyn Any>) {
            self.0.borrow_mut().binds.push(reference.to_string());
        }
        fn unbind(&mut self, reference: &str, _id: ServiceId) {
            self.0.borrow_mut().unbinds.push(reference.to_string());
        }
        fn provided_service(&self) -> Option<Rc<dyn Any>> {
            Some(Rc::new(42u32))
        }
    }

    fn probe_component(probe: Rc<RefCell<Probe>>, reference: DsReference) -> DsComponent {
        DsComponent::new("user", move || Box::new(ProbeInstance(probe.clone())))
            .provides("user.Service")
            .requires(reference)
    }

    #[test]
    fn mandatory_reference_gates_activation() {
        let mut fw = Framework::new();
        let mut scr = ScrRuntime::new();
        let probe: Rc<RefCell<Probe>> = Rc::default();
        scr.add_component(
            &mut fw,
            probe_component(probe.clone(), DsReference::mandatory("log", "log.Service")),
        );
        assert_eq!(scr.state("user"), Some(DsState::Unsatisfied));
        assert_eq!(probe.borrow().activations, 0);

        // The dependency arrives.
        let log_id =
            fw.registry_mut()
                .register(&["log.Service"], Rc::new("logger"), Properties::new());
        scr.process(&mut fw);
        assert_eq!(scr.state("user"), Some(DsState::Active));
        assert_eq!(probe.borrow().activations, 1);
        assert_eq!(probe.borrow().binds, vec!["log"]);
        assert_eq!(scr.bound_to("user", "log"), vec![log_id]);
        // The provided service is registered while active.
        assert_eq!(fw.registry().find("user.Service", None).len(), 1);

        // The dependency leaves.
        fw.registry_mut().unregister(log_id);
        scr.process(&mut fw);
        assert_eq!(scr.state("user"), Some(DsState::Unsatisfied));
        assert_eq!(probe.borrow().deactivations, 1);
        assert_eq!(probe.borrow().unbinds, vec!["log"]);
        assert!(fw.registry().find("user.Service", None).is_empty());
    }

    #[test]
    fn optional_reference_does_not_gate() {
        let mut fw = Framework::new();
        let mut scr = ScrRuntime::new();
        let probe: Rc<RefCell<Probe>> = Rc::default();
        scr.add_component(
            &mut fw,
            probe_component(
                probe.clone(),
                DsReference::mandatory("log", "log.Service")
                    .with_cardinality(Cardinality::Optional),
            ),
        );
        assert_eq!(scr.state("user"), Some(DsState::Active));
        assert!(probe.borrow().binds.is_empty());
    }

    #[test]
    fn components_satisfy_each_other_in_chains() {
        let mut fw = Framework::new();
        let mut scr = ScrRuntime::new();
        let p1: Rc<RefCell<Probe>> = Rc::default();
        let p2: Rc<RefCell<Probe>> = Rc::default();
        // `user` needs user.Service provided by `provider`.
        let user = {
            let p = p2.clone();
            DsComponent::new("consumer", move || Box::new(ProbeInstance(p.clone())))
                .requires(DsReference::mandatory("dep", "user.Service"))
        };
        scr.add_component(&mut fw, user);
        assert_eq!(scr.state("consumer"), Some(DsState::Unsatisfied));
        let provider = {
            let p = p1.clone();
            DsComponent::new("user", move || Box::new(ProbeInstance(p.clone())))
                .provides("user.Service")
        };
        scr.add_component(&mut fw, provider);
        // Fixpoint: provider activates, registers user.Service, consumer
        // activates off it.
        assert_eq!(scr.state("user"), Some(DsState::Active));
        assert_eq!(scr.state("consumer"), Some(DsState::Active));
        // Removing the provider cascades.
        scr.remove_component(&mut fw, "user");
        assert_eq!(scr.state("consumer"), Some(DsState::Unsatisfied));
    }

    #[test]
    fn target_filter_narrows_candidates() {
        let mut fw = Framework::new();
        let mut scr = ScrRuntime::new();
        fw.registry_mut().register(
            &["log.Service"],
            Rc::new("noisy"),
            Properties::new().with("level", "debug"),
        );
        let probe: Rc<RefCell<Probe>> = Rc::default();
        scr.add_component(
            &mut fw,
            probe_component(
                probe.clone(),
                DsReference::mandatory("log", "log.Service")
                    .with_target(Filter::parse("(level=error)").unwrap()),
            ),
        );
        assert_eq!(scr.state("user"), Some(DsState::Unsatisfied));
        fw.registry_mut().register(
            &["log.Service"],
            Rc::new("quiet"),
            Properties::new().with("level", "error"),
        );
        scr.process(&mut fw);
        assert_eq!(scr.state("user"), Some(DsState::Active));
    }

    #[test]
    fn dynamic_reference_rebinds_without_restart() {
        let mut fw = Framework::new();
        let mut scr = ScrRuntime::new();
        let first = fw.registry_mut().register(
            &["log.Service"],
            Rc::new("first"),
            Properties::new().with("service.ranking", 1),
        );
        let probe: Rc<RefCell<Probe>> = Rc::default();
        scr.add_component(
            &mut fw,
            probe_component(
                probe.clone(),
                DsReference::mandatory("log", "log.Service").with_policy(BindingPolicy::Dynamic),
            ),
        );
        assert_eq!(scr.bound_to("user", "log"), vec![first]);
        // A higher-ranked service appears: rebind in place, no restart.
        let better = fw.registry_mut().register(
            &["log.Service"],
            Rc::new("better"),
            Properties::new().with("service.ranking", 10),
        );
        scr.process(&mut fw);
        assert_eq!(scr.bound_to("user", "log"), vec![better]);
        assert_eq!(probe.borrow().activations, 1, "no restart");
        assert_eq!(probe.borrow().binds.len(), 2);
        assert_eq!(probe.borrow().unbinds.len(), 1);
    }

    #[test]
    fn scr_xml_parses_the_full_grammar() {
        let xml = r#"<?xml version="1.0"?>
        <scr:component name="logger">
          <implementation class="com.acme.Logger"/>
          <service><provide interface="log.Service"/></service>
          <property name="level" type="String" value="info"/>
          <property name="buffer" type="Integer" value="128"/>
          <property name="sync" type="Boolean" value="true"/>
          <reference name="store" interface="store.Service"
                     cardinality="0..1" policy="dynamic"
                     target="(kind=disk)"/>
        </scr:component>"#;
        let c = DsComponent::from_xml(xml, || Box::new(ProbeInstance(Rc::default()))).unwrap();
        assert_eq!(c.name, "logger");
        assert_eq!(c.provides.as_deref(), Some("log.Service"));
        assert_eq!(c.references.len(), 1);
        let r = &c.references[0];
        assert_eq!(r.cardinality, Cardinality::Optional);
        assert_eq!(r.policy, BindingPolicy::Dynamic);
        assert!(r.target.is_some());
        assert_eq!(
            c.properties.get("buffer"),
            Some(&crate::ldap::PropValue::Int(128))
        );

        // And it deploys like a builder-made component.
        let mut fw = Framework::new();
        let mut scr = ScrRuntime::new();
        scr.add_component(&mut fw, c);
        assert_eq!(scr.state("logger"), Some(DsState::Active));
        let found = fw.registry().find("log.Service", None);
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].properties().get("level"),
            Some(&crate::ldap::PropValue::Str("info".into()))
        );
    }

    #[test]
    fn scr_xml_rejects_malformed_documents() {
        let mk = |xml: &str| DsComponent::from_xml(xml, || Box::new(ProbeInstance(Rc::default())));
        for bad in [
            "<scr:component/>",                                                 // no name
            "<other name=\"x\"/>",                                              // wrong root
            "<scr:component name=\"x\"><service/></scr:component>",             // no provide
            r#"<scr:component name="x"><reference name="r"/></scr:component>"#, // no interface
            r#"<scr:component name="x"><reference name="r" interface="i" cardinality="2..3"/></scr:component>"#,
            r#"<scr:component name="x"><reference name="r" interface="i" policy="magic"/></scr:component>"#,
            r#"<scr:component name="x"><reference name="r" interface="i" target="((("/></scr:component>"#,
            r#"<scr:component name="x"><property name="p" type="Integer" value="abc"/></scr:component>"#,
        ] {
            assert!(mk(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn multiple_cardinality_binds_all() {
        let mut fw = Framework::new();
        let mut scr = ScrRuntime::new();
        for i in 0..3 {
            fw.registry_mut()
                .register(&["sink.Service"], Rc::new(i), Properties::new());
        }
        let probe: Rc<RefCell<Probe>> = Rc::default();
        scr.add_component(
            &mut fw,
            probe_component(
                probe.clone(),
                DsReference::mandatory("sinks", "sink.Service")
                    .with_cardinality(Cardinality::AtLeastOne),
            ),
        );
        assert_eq!(scr.state("user"), Some(DsState::Active));
        assert_eq!(probe.borrow().binds.len(), 3);
        assert_eq!(scr.bound_to("user", "sinks").len(), 3);
    }
}
