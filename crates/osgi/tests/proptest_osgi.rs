//! Property-based tests for the OSGi substrate: LDAP filter grammar
//! roundtrips, version ordering laws, and registry selection invariants.

use osgi::ldap::{Filter, PropValue, Properties};
use osgi::registry::ServiceRegistry;
use osgi::version::{Version, VersionRange};
use proptest::prelude::*;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn attr_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9._-]{0,12}"
}

/// Values may contain filter metacharacters; Display must escape them.
fn attr_value() -> impl Strategy<Value = String> {
    "[ -~]{0,16}"
}

fn leaf_filter() -> impl Strategy<Value = Filter> {
    prop_oneof![
        (attr_name(), attr_value()).prop_map(|(a, v)| Filter::Equal(a, v)),
        (attr_name(), attr_value()).prop_map(|(a, v)| Filter::Approx(a, v)),
        (attr_name(), attr_value()).prop_map(|(a, v)| Filter::GreaterEq(a, v)),
        (attr_name(), attr_value()).prop_map(|(a, v)| Filter::LessEq(a, v)),
        attr_name().prop_map(Filter::Present),
        (
            attr_name(),
            proptest::option::of(attr_value().prop_filter("nonempty", |s| !s.is_empty())),
            proptest::collection::vec(
                attr_value().prop_filter("nonempty", |s| !s.is_empty()),
                0..3
            ),
            proptest::option::of(attr_value().prop_filter("nonempty", |s| !s.is_empty())),
        )
            .prop_filter_map(
                "fully-empty substring canonicalizes to a presence test",
                |(attr, initial, any, final_)| {
                    (initial.is_some() || !any.is_empty() || final_.is_some()).then_some(
                        Filter::Substring {
                            attr,
                            initial,
                            any,
                            final_,
                        },
                    )
                }
            ),
    ]
}

fn filter_tree() -> impl Strategy<Value = Filter> {
    leaf_filter().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Filter::And),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

fn version() -> impl Strategy<Value = Version> {
    (0u32..100, 0u32..100, 0u32..100, "[a-z0-9]{0,6}").prop_map(|(ma, mi, mc, q)| Version {
        major: ma,
        minor: mi,
        micro: mc,
        qualifier: q,
    })
}

proptest! {
    /// Every filter the AST can express prints to a string the parser
    /// reads back to the identical AST.
    #[test]
    fn filter_display_parse_roundtrip(f in filter_tree()) {
        let printed = f.to_string();
        let reparsed = Filter::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn filter_parse_never_panics(s in "[ -~]{0,40}") {
        let _ = Filter::parse(&s);
    }

    /// Semantic sanity: a generated filter evaluates identically before and
    /// after a print/parse cycle, over arbitrary property sets.
    #[test]
    fn filter_semantics_survive_roundtrip(
        f in filter_tree(),
        props in proptest::collection::vec(("[a-z]{1,6}", "[ -~]{0,8}"), 0..6),
    ) {
        let dict: Properties = props
            .into_iter()
            .map(|(k, v)| (k, PropValue::Str(v)))
            .collect();
        let reparsed = Filter::parse(&f.to_string()).expect("roundtrip parse");
        prop_assert_eq!(f.matches(&dict), reparsed.matches(&dict));
    }

    /// Version display/parse roundtrip.
    #[test]
    fn version_display_parse_roundtrip(v in version()) {
        let reparsed: Version = v.to_string().parse().expect("reparse");
        prop_assert_eq!(v, reparsed);
    }

    /// Version ordering is total and consistent with segment ordering.
    #[test]
    fn version_ordering_laws(a in version(), b in version()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(&a, &b),
        }
        if a.major != b.major {
            prop_assert_eq!(a.major.cmp(&b.major), a.cmp(&b));
        }
    }

    /// Range membership agrees with the endpoints' ordering.
    #[test]
    fn range_membership_consistent(lo in version(), hi in version(), probe in version()) {
        prop_assume!(lo <= hi);
        let range = VersionRange {
            floor: lo.clone(),
            floor_inclusive: true,
            ceiling: Some(hi.clone()),
            ceiling_inclusive: true,
        };
        prop_assert_eq!(range.includes(&probe), lo <= probe && probe <= hi);
        // Displayed form parses back to something with identical membership.
        let reparsed: VersionRange = range.to_string().parse().expect("range reparse");
        prop_assert_eq!(reparsed.includes(&probe), range.includes(&probe));
    }

    /// Registry ranking selection: find_one always returns the maximum by
    /// (ranking desc, id asc) among matching services.
    #[test]
    fn registry_selection_order(rankings in proptest::collection::vec(-100i64..100, 1..12)) {
        let mut reg = ServiceRegistry::new();
        let ids: Vec<_> = rankings
            .iter()
            .map(|&r| {
                reg.register(
                    &["svc"],
                    Rc::new(()),
                    Properties::new().with("service.ranking", r),
                )
            })
            .collect();
        let found = reg.find("svc", None);
        prop_assert_eq!(found.len(), rankings.len());
        // Verify the full sort order.
        for pair in found.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            prop_assert!(
                a.ranking() > b.ranking()
                    || (a.ranking() == b.ranking() && a.id().raw() < b.id().raw())
            );
        }
        // find_one is the head.
        let best = reg.find_one("svc", None).expect("nonempty");
        prop_assert_eq!(best.id(), found[0].id());
        // Unregister everything; registry drains.
        for id in ids {
            prop_assert!(reg.unregister(id));
        }
        prop_assert!(reg.is_empty());
    }
}
