//! Property-based tests for the OSGi substrate: LDAP filter grammar
//! roundtrips, version ordering laws, and registry selection invariants.
//!
//! Cases are generated from the in-repo seeded [`SimRng`] (no external
//! property-testing crate).

use osgi::ldap::{Filter, PropValue, Properties};
use osgi::registry::ServiceRegistry;
use osgi::version::{Version, VersionRange};
use rtos::rng::SimRng;
use std::rc::Rc;

const CASES: usize = 128;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn string_from(rng: &mut SimRng, first: &[u8], rest: &[u8], min: usize, max: usize) -> String {
    let len = rng.uniform_u64(min as u64, max as u64 + 1) as usize;
    (0..len)
        .map(|i| {
            let set = if i == 0 { first } else { rest };
            set[rng.uniform_u64(0, set.len() as u64) as usize] as char
        })
        .collect()
}

const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
const ALNUM_EXT: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";

fn attr_name(rng: &mut SimRng) -> String {
    string_from(rng, ALPHA, ALNUM_EXT, 1, 13)
}

/// Values may contain filter metacharacters; Display must escape them.
fn attr_value(rng: &mut SimRng, min: usize, max: usize) -> String {
    let len = rng.uniform_u64(min as u64, max as u64 + 1) as usize;
    // All printable ASCII, including `(`, `)`, `*`, `\`.
    (0..len)
        .map(|_| rng.uniform_u64(0x20, 0x7F) as u8 as char)
        .collect()
}

fn nonempty_value(rng: &mut SimRng) -> String {
    attr_value(rng, 1, 8)
}

fn leaf_filter(rng: &mut SimRng) -> Filter {
    match rng.uniform_u64(0, 6) {
        0 => Filter::Equal(attr_name(rng), attr_value(rng, 0, 16)),
        1 => Filter::Approx(attr_name(rng), attr_value(rng, 0, 16)),
        2 => Filter::GreaterEq(attr_name(rng), attr_value(rng, 0, 16)),
        3 => Filter::LessEq(attr_name(rng), attr_value(rng, 0, 16)),
        4 => Filter::Present(attr_name(rng)),
        _ => {
            // A substring with at least one nonempty part (a fully-empty
            // substring canonicalizes to a presence test).
            loop {
                let initial = rng.chance(0.5).then(|| nonempty_value(rng));
                let any: Vec<String> = (0..rng.uniform_u64(0, 3))
                    .map(|_| nonempty_value(rng))
                    .collect();
                let final_ = rng.chance(0.5).then(|| nonempty_value(rng));
                if initial.is_some() || !any.is_empty() || final_.is_some() {
                    return Filter::Substring {
                        attr: attr_name(rng),
                        initial,
                        any,
                        final_,
                    };
                }
            }
        }
    }
}

fn filter_tree(rng: &mut SimRng, depth: usize) -> Filter {
    if depth == 0 || rng.chance(0.4) {
        return leaf_filter(rng);
    }
    match rng.uniform_u64(0, 3) {
        0 => Filter::And(
            (0..rng.uniform_u64(0, 4))
                .map(|_| filter_tree(rng, depth - 1))
                .collect(),
        ),
        1 => Filter::Or(
            (0..rng.uniform_u64(0, 4))
                .map(|_| filter_tree(rng, depth - 1))
                .collect(),
        ),
        _ => Filter::Not(Box::new(filter_tree(rng, depth - 1))),
    }
}

fn version(rng: &mut SimRng) -> Version {
    Version {
        major: rng.uniform_u64(0, 100) as u32,
        minor: rng.uniform_u64(0, 100) as u32,
        micro: rng.uniform_u64(0, 100) as u32,
        qualifier: string_from(
            rng,
            b"abcdefghijklmnopqrstuvwxyz0123456789",
            b"abcdefghijklmnopqrstuvwxyz0123456789",
            0,
            6,
        ),
    }
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

/// Every filter the AST can express prints to a string the parser reads
/// back to the identical AST.
#[test]
fn filter_display_parse_roundtrip() {
    let mut rng = SimRng::from_seed(0xF117);
    for case in 0..CASES {
        let f = filter_tree(&mut rng, 3);
        let printed = f.to_string();
        let reparsed = Filter::parse(&printed)
            .unwrap_or_else(|e| panic!("case {case}: reparse of `{printed}` failed: {e}"));
        assert_eq!(f, reparsed, "case {case}");
    }
}

/// Parsing never panics on arbitrary input.
#[test]
fn filter_parse_never_panics() {
    let mut rng = SimRng::from_seed(0x9A21C);
    for _ in 0..CASES {
        let s = attr_value(&mut rng, 0, 40);
        let _ = Filter::parse(&s);
    }
}

/// Semantic sanity: a generated filter evaluates identically before and
/// after a print/parse cycle, over arbitrary property sets.
#[test]
fn filter_semantics_survive_roundtrip() {
    let mut rng = SimRng::from_seed(0x5E3A);
    for case in 0..CASES {
        let f = filter_tree(&mut rng, 3);
        let dict: Properties = (0..rng.uniform_u64(0, 6))
            .map(|_| {
                (
                    string_from(
                        &mut rng,
                        b"abcdefghijklmnopqrstuvwxyz",
                        b"abcdefghijklmnopqrstuvwxyz",
                        1,
                        6,
                    ),
                    PropValue::Str(attr_value(&mut rng, 0, 8)),
                )
            })
            .collect();
        let reparsed = Filter::parse(&f.to_string()).expect("roundtrip parse");
        assert_eq!(f.matches(&dict), reparsed.matches(&dict), "case {case}");
    }
}

/// Version display/parse roundtrip.
#[test]
fn version_display_parse_roundtrip() {
    let mut rng = SimRng::from_seed(0x7E51);
    for case in 0..CASES {
        let v = version(&mut rng);
        let reparsed: Version = v.to_string().parse().expect("reparse");
        assert_eq!(v, reparsed, "case {case}");
    }
}

/// Version ordering is total and consistent with segment ordering.
#[test]
fn version_ordering_laws() {
    use std::cmp::Ordering;
    let mut rng = SimRng::from_seed(0x03D3);
    for case in 0..CASES {
        let a = version(&mut rng);
        let b = version(&mut rng);
        match a.cmp(&b) {
            Ordering::Less => assert_eq!(b.cmp(&a), Ordering::Greater, "case {case}"),
            Ordering::Greater => assert_eq!(b.cmp(&a), Ordering::Less, "case {case}"),
            Ordering::Equal => assert_eq!(&a, &b, "case {case}"),
        }
        if a.major != b.major {
            assert_eq!(a.major.cmp(&b.major), a.cmp(&b), "case {case}");
        }
    }
}

/// Range membership agrees with the endpoints' ordering.
#[test]
fn range_membership_consistent() {
    let mut rng = SimRng::from_seed(0x2A46E);
    let mut checked = 0;
    while checked < CASES {
        let lo = version(&mut rng);
        let hi = version(&mut rng);
        let probe = version(&mut rng);
        if lo > hi {
            continue;
        }
        checked += 1;
        let range = VersionRange {
            floor: lo.clone(),
            floor_inclusive: true,
            ceiling: Some(hi.clone()),
            ceiling_inclusive: true,
        };
        assert_eq!(range.includes(&probe), lo <= probe && probe <= hi);
        // Displayed form parses back to something with identical membership.
        let reparsed: VersionRange = range.to_string().parse().expect("range reparse");
        assert_eq!(reparsed.includes(&probe), range.includes(&probe));
    }
}

/// Registry ranking selection: find_one always returns the maximum by
/// (ranking desc, id asc) among matching services.
#[test]
fn registry_selection_order() {
    let mut rng = SimRng::from_seed(0x8E6);
    for case in 0..CASES {
        let rankings: Vec<i64> = (0..rng.uniform_u64(1, 12))
            .map(|_| rng.uniform_u64(0, 200) as i64 - 100)
            .collect();
        let mut reg = ServiceRegistry::new();
        let ids: Vec<_> = rankings
            .iter()
            .map(|&r| {
                reg.register(
                    &["svc"],
                    Rc::new(()),
                    Properties::new().with("service.ranking", r),
                )
            })
            .collect();
        let found = reg.find("svc", None);
        assert_eq!(found.len(), rankings.len(), "case {case}");
        // Verify the full sort order.
        for pair in found.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.ranking() > b.ranking()
                    || (a.ranking() == b.ranking() && a.id().raw() < b.id().raw()),
                "case {case}"
            );
        }
        // find_one is the head.
        let best = reg.find_one("svc", None).expect("nonempty");
        assert_eq!(best.id(), found[0].id(), "case {case}");
        // Unregister everything; registry drains.
        for id in ids {
            assert!(reg.unregister(id), "case {case}");
        }
        assert!(reg.is_empty(), "case {case}");
    }
}
