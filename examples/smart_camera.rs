//! The paper's Figure 2 smart camera, end to end: a camera component
//! publishing frames over `RTAI.SHM`, deployed from its **XML descriptor**,
//! plus a region-of-interest tracker consuming them — the ARFLEX-style
//! pipeline the paper's §2.3 sketches.
//!
//! Run with: `cargo run --example smart_camera`

use drt::prelude::*;

/// The descriptor from the paper's Figure 2 (ASCII quotes; `xysize` is fed
/// back by the tracker, so the tracker declares it as an outport).
const CAMERA_XML: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="this is a smart camera controller"
    type="periodic" enabled="true" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400" />
  <inport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
  <property name="prox00" type="Integer" value="6" />
</drt:component>"#;

const TRACKER_XML: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="roi" desc="region-of-interest tracker"
    type="periodic" enabled="true" cpuusage="0.2">
  <implementation bincode="ua.pats.demo.roitracker.RTComponent"/>
  <periodictask frequence="50" runoncup="0" priority="3"/>
  <inport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  <outport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
</drt:component>"#;

/// Camera logic: stamps a synthetic frame into `images`, honouring the
/// `prox00` property as a brightness offset, and reads back the ROI the
/// tracker requested.
struct CameraLogic {
    frame: Vec<u8>,
}

impl RtLogic for CameraLogic {
    fn on_cycle(&mut self, io: &mut RtIo<'_, '_>) {
        // Grab + encode a frame: the simulated computing job.
        io.compute(SimDuration::from_micros(600));
        let offset = match io.property("prox00") {
            Some(PropertyValue::Integer(i)) => *i as u8,
            _ => 0,
        };
        let stamp = (io.cycle() % 251) as u8;
        for (i, px) in self.frame.iter_mut().enumerate() {
            *px = stamp.wrapping_add(offset).wrapping_add(i as u8);
        }
        io.write("images", &self.frame).expect("publish frame");
        // On-demand ROI: the tracker writes the window it wants back.
        if let Ok(Some(roi)) = io.read("xysize") {
            let w = i32::from_le_bytes(roi[0..4].try_into().expect("4 bytes"));
            if w > 0 && io.cycle().is_multiple_of(100) {
                io.log(format!("camera honouring ROI width {w}"));
            }
        }
    }
}

/// Tracker logic: scans the frame, derives a region of interest and feeds
/// the request back to the camera.
struct TrackerLogic {
    last_centroid: i32,
}

impl RtLogic for TrackerLogic {
    fn on_cycle(&mut self, io: &mut RtIo<'_, '_>) {
        let Ok(Some(frame)) = io.read("images") else {
            return;
        };
        io.compute(SimDuration::from_micros(900));
        // A toy centroid: index of the brightest pixel.
        let centroid = frame
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i as i32)
            .unwrap_or(0);
        self.last_centroid = centroid;
        let mut request = vec![0u8; 400 * 4];
        request[0..4].copy_from_slice(&(centroid.max(1)).to_le_bytes());
        io.write("xysize", &request).expect("send ROI");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DrtRuntime::new(KernelConfig::new(7));

    // The tracker needs the camera's frames, and the camera needs an ROI
    // channel: the DRCR holds both back until the pipeline is complete.
    rt.install_component(
        "arflex.camera",
        ComponentProvider::from_xml(CAMERA_XML, || {
            Box::new(CameraLogic {
                frame: vec![0; 400],
            })
        })?,
    )?;
    println!(
        "camera alone:  camera={:?} (waiting for the ROI feedback channel)",
        rt.component_state("camera")
    );

    rt.install_component(
        "arflex.roi",
        ComponentProvider::from_xml(TRACKER_XML, || Box::new(TrackerLogic { last_centroid: 0 }))?,
    )?;
    println!(
        "pipeline full: camera={:?} roi={:?}",
        rt.component_state("camera"),
        rt.component_state("roi")
    );

    rt.advance(SimDuration::from_secs(2));
    let cam_task = rt.drcr().task_of("camera").expect("camera task");
    let roi_task = rt.drcr().task_of("roi").expect("roi task");
    println!(
        "after 2 s: camera cycles = {}, tracker cycles = {}",
        rt.kernel().task_cycles(cam_task).unwrap(),
        rt.kernel().task_cycles(roi_task).unwrap()
    );
    println!(
        "frames published = {}, frames consumed = {}",
        rt.kernel().shm().get("images").unwrap().write_count(),
        rt.kernel().shm().get("images").unwrap().read_count()
    );

    // Retune the camera on the fly through the management interface: raise
    // the prox00 brightness offset. The change travels over the §3.2
    // asynchronous bridge and is applied between cycles.
    let mgmt = rt.management("camera").expect("management service");
    mgmt.set_property("prox00", PropertyValue::Integer(42))?;
    rt.advance(SimDuration::from_millis(50));
    let token = mgmt.request_property("prox00")?;
    rt.advance(SimDuration::from_millis(50));
    match mgmt.poll_reply(token)? {
        Some(ManagementReply::Property { value, .. }) => {
            println!("prox00 after retune: {value:?}");
        }
        other => println!("unexpected reply: {other:?}"),
    }

    Ok(())
}
