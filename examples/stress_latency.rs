//! Table-1-style latency measurement from the command line: pick the
//! implementation path, the load regime, the cycle count and the seed, and
//! get the paper's four statistics plus a latency histogram.
//!
//! Usage:
//!   cargo run --release --example stress_latency -- [hrc|pure] [light|stress] [cycles] [seed]
//!
//! Defaults: hrc stress 20000 42.

use bench::{run_table1_config, ImplKind, Table1Config};
use rtos::latency::LoadMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let impl_kind = match args.first().map(String::as_str) {
        Some("pure") => ImplKind::PureRtai,
        Some("hrc") | None => ImplKind::Hrc,
        Some(other) => {
            eprintln!("unknown implementation `{other}` (use hrc|pure)");
            std::process::exit(2);
        }
    };
    let load = match args.get(1).map(String::as_str) {
        Some("light") => LoadMode::Light,
        Some("stress") | None => LoadMode::Stress,
        Some(other) => {
            eprintln!("unknown load mode `{other}` (use light|stress)");
            std::process::exit(2);
        }
    };
    let cycles: u64 = args
        .get(2)
        .map(|s| s.parse().expect("cycles must be an integer"))
        .unwrap_or(20_000);
    let seed: u64 = args
        .get(3)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    println!("configuration: {impl_kind}, {load} load, {cycles} cycles at 1 kHz, seed {seed}");
    let cfg = Table1Config {
        cycles,
        ..Table1Config::paper(impl_kind, load, seed)
    };
    let stats = run_table1_config(&cfg);

    println!("\nscheduling latency of the 1 kHz calculation task (ns):");
    println!("  samples : {}", stats.count());
    println!("  average : {:>12.2}", stats.average());
    println!("  avedev  : {:>12.2}", stats.avedev());
    println!("  min     : {:>12}", stats.min().unwrap_or(0));
    println!("  max     : {:>12}", stats.max().unwrap_or(0));
    println!("  p1      : {:>12}", stats.percentile(1.0).unwrap_or(0));
    println!("  p50     : {:>12}", stats.percentile(50.0).unwrap_or(0));
    println!("  p99     : {:>12}", stats.percentile(99.0).unwrap_or(0));

    // ASCII histogram over the observed range.
    let lo = stats.min().unwrap_or(-1) - 1;
    let hi = stats.max().unwrap_or(1) + 1;
    let bins = 24usize;
    let counts = stats.histogram(lo, hi, bins);
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let width = (hi - lo) as f64 / bins as f64;
    println!("\nhistogram ({lo}..{hi} ns, {bins} bins):");
    for (i, &c) in counts.iter().enumerate() {
        let left = lo + (i as f64 * width) as i64;
        let bar = "#".repeat((c * 50).div_ceil(peak));
        println!("  {left:>9} | {bar:<50} {c}");
    }
}
