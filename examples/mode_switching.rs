//! Operating modes and graceful degradation: a camera with `normal`,
//! `degrad` and `burst` contracts, governed by an adaptation manager that
//! downgrades modes under pressure instead of suspending components.
//!
//! Run with: `cargo run --example mode_switching`

use drcom::adapt::{AdaptationManager, GracefulDegradation};
use drt::prelude::*;

const CAMERA_XML: &str = r#"<drt:component name="cam" desc="moded camera"
    type="periodic" cpuusage="0.55">
  <implementation bincode="demo.ModedCamera"/>
  <periodictask frequence="1000" priority="2"/>
  <mode name="degrad" frequence="100" cpuusage="0.06" priority="2"/>
  <mode name="burst" frequence="2000" cpuusage="0.85" priority="1"/>
  <property name="importance" type="Integer" value="1"/>
</drt:component>"#;

fn camera() -> ComponentProvider {
    ComponentProvider::from_xml(CAMERA_XML, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(300));
        }))
    })
    .expect("descriptor")
}

fn heavy(name: &str, usage: f64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, 0, 3)
        .cpu_usage(usage)
        .property("importance", PropertyValue::Integer(10))
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

fn report(rt: &DrtRuntime, step: &str) {
    println!(
        "{step:<46} cam mode={:<7} state={:<11} reserved CPU0={:.2}",
        rt.drcr().current_mode("cam").unwrap_or_default(),
        rt.component_state("cam")
            .map(|s| s.to_string())
            .unwrap_or_default(),
        rt.drcr().ledger().utilization(0),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DrtRuntime::new(KernelConfig::new(19).with_timer(TimerJitterModel::ideal()));
    rt.install_component("demo.cam", camera())?;
    report(&rt, "camera deployed (normal: 1 kHz, 55%)");

    // Manual mode switching through the DRCR — with full re-admission.
    rt.switch_mode("cam", "burst")?;
    report(&rt, "switched to burst (2 kHz, 85%)");
    rt.advance(SimDuration::from_millis(100));

    rt.switch_mode("cam", "normal")?;
    report(&rt, "back to normal");

    // An important heavy component arrives; the adaptation manager's
    // graceful-degradation policy downgrades the camera instead of
    // suspending it.
    let mut mgr =
        AdaptationManager::new().with_policy(Box::new(GracefulDegradation::new(0, 0.3, 0.8)));
    rt.install_component("demo.heavy", heavy("heavy", 0.40))?;
    report(&rt, "40% component arrives (pressure 0.95)");
    for cmd in mgr.run_once(&mut rt)? {
        println!("  adaptation: {cmd}");
    }
    report(&rt, "after adaptation");

    rt.advance(SimDuration::from_secs(1));

    // The heavy component leaves; the manager restores the base mode.
    let heavy_bundle = rt.drcr().bundle_of("heavy").expect("bundle");
    rt.stop_bundle(heavy_bundle)?;
    for cmd in mgr.run_once(&mut rt)? {
        println!("  adaptation: {cmd}");
    }
    report(&rt, "heavy left; after adaptation");

    println!("\nDRCR decision log:");
    for e in rt.drcr().events().iter() {
        println!("  {}", e.event);
    }
    Ok(())
}
