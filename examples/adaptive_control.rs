//! Adaptive control scenario: a plant controller pipeline that the DRCR
//! reconfigures at run time — the paper's motivating use case (industrial
//! control with continuous deployment) played end to end.
//!
//! The cast:
//! * `sensor` — 500 Hz, publishes plant measurements.
//! * `pid`    — 500 Hz primary controller, consumes `meas`, produces `act`.
//! * `bang`   — a cheap 100 Hz fallback controller for the same actuator
//!   channel, deployed *disabled*.
//! * `logger` — 10 Hz, consumes `act` (depends on whichever controller
//!   runs).
//! * a **customized resolving service** that caps CPU 0 at 60% —
//!   representing a site policy stricter than the internal resolver.
//!
//! The scenario: deploy everything → the strict resolver rejects the PID's
//! appetite → operators register capacity (lift the cap) → PID activates →
//! the PID bundle crashes/stops → the DRCR cascades, operators enable the
//! fallback → the logger rewires to the fallback automatically.
//!
//! Run with: `cargo run --example adaptive_control`

use drcom::resolve::{Decision, ResolvingService};
use drcom::view::{ComponentInfo, SystemView};
use drt::prelude::*;
use std::rc::Rc;

/// A site policy: CPU 0 may not be booked beyond a fixed fraction.
struct SiteCap {
    cap: f64,
}

impl ResolvingService for SiteCap {
    fn name(&self) -> &str {
        "site-cap"
    }
    fn admit(&self, candidate: &ComponentInfo, view: &SystemView) -> Decision {
        if candidate.cpu != 0 {
            return Decision::Admit;
        }
        let u = view.utilization(0) + candidate.cpu_usage;
        if u <= self.cap + 1e-9 {
            Decision::Admit
        } else {
            Decision::Reject(format!(
                "site policy caps CPU 0 at {:.0}%",
                self.cap * 100.0
            ))
        }
    }
}

fn sensor() -> ComponentProvider {
    let d = ComponentDescriptor::builder("sensor")
        .description("plant measurement acquisition, 500 Hz")
        .periodic(500, 0, 1)
        .cpu_usage(0.10)
        .outport("meas", PortInterface::Shm, DataType::Integer, 4)
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(150));
            // A decaying oscillation as the "plant".
            let t = io.cycle() as f64 / 500.0;
            let y = (100.0 * (2.0 * t).sin() * (-0.2 * t).exp()) as i32;
            let mut buf = [0u8; 16];
            buf[0..4].copy_from_slice(&y.to_le_bytes());
            io.write("meas", &buf).expect("publish measurement");
        }))
    })
}

fn pid() -> ComponentProvider {
    let d = ComponentDescriptor::builder("pid")
        .description("primary PID controller, 500 Hz")
        .periodic(500, 0, 2)
        .cpu_usage(0.55)
        .inport("meas", PortInterface::Shm, DataType::Integer, 4)
        .outport("act", PortInterface::Shm, DataType::Integer, 1)
        .property("kp", PropertyValue::Float(0.8))
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || {
        let mut integral = 0i64;
        Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
            let Ok(Some(meas)) = io.read("meas") else {
                return;
            };
            io.compute(SimDuration::from_micros(800));
            let y = i32::from_le_bytes(meas[0..4].try_into().expect("4 bytes")) as i64;
            integral += y;
            let kp = match io.property("kp") {
                Some(PropertyValue::Float(k)) => *k,
                _ => 1.0,
            };
            let u = (-(kp * y as f64) - 0.01 * integral as f64) as i32;
            io.write("act", &u.to_le_bytes()).expect("actuate");
        }))
    })
}

fn bang_bang() -> ComponentProvider {
    let d = ComponentDescriptor::builder("bang")
        .description("bang-bang fallback controller, 100 Hz")
        .periodic(100, 0, 3)
        .cpu_usage(0.05)
        .enabled(false) // deployed cold: operators enable it on demand
        .inport("meas", PortInterface::Shm, DataType::Integer, 4)
        .outport("act", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            let Ok(Some(meas)) = io.read("meas") else {
                return;
            };
            io.compute(SimDuration::from_micros(60));
            let y = i32::from_le_bytes(meas[0..4].try_into().expect("4 bytes"));
            let u: i32 = if y > 0 { -50 } else { 50 };
            io.write("act", &u.to_le_bytes()).expect("actuate");
        }))
    })
}

fn logger() -> ComponentProvider {
    let d = ComponentDescriptor::builder("logger")
        .description("actuation logger, 10 Hz")
        .periodic(10, 0, 6)
        .cpu_usage(0.02)
        .inport("act", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            if let Ok(Some(u)) = io.read("act") {
                let u = i32::from_le_bytes(u[0..4].try_into().expect("4 bytes"));
                if io.cycle().is_multiple_of(10) {
                    io.log(format!("actuation = {u}"));
                }
            }
        }))
    })
}

fn states(rt: &DrtRuntime) -> String {
    ["sensor", "pid", "bang", "logger"]
        .iter()
        .map(|n| {
            format!(
                "{n}={}",
                rt.component_state(n)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "GONE".into())
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DrtRuntime::new(KernelConfig::new(3));

    // Site policy: CPU 0 capped at 60%.
    let cap = rt.register_resolver(Rc::new(SiteCap { cap: 0.60 }));

    rt.install_component("plant.sensor", sensor())?;
    let pid_bundle = rt.install_component("plant.pid", pid())?;
    rt.install_component("plant.bang", bang_bang())?;
    rt.install_component("plant.logger", logger())?;

    println!("1. deployed under 60% site cap:");
    println!("   {}", states(&rt));
    println!("   (sensor 10% fits; pid claims 55%, which would push CPU 0 to 65%");
    println!("    and the site resolver vetoes it; the logger needs `act`, so it waits too)");

    rt.advance(SimDuration::from_millis(200));

    // Operators lift the site cap: swap the resolver for a laxer one.
    rt.unregister_resolver(cap);
    rt.register_resolver(Rc::new(SiteCap { cap: 0.90 }));
    println!("\n2. site cap lifted to 90%:");
    println!("   {}", states(&rt));

    rt.advance(SimDuration::from_secs(1));

    // The PID bundle is stopped (crash, upgrade, ...): the DRCR cascades.
    rt.stop_bundle(pid_bundle)?;
    println!("\n3. pid bundle stopped:");
    println!("   {}", states(&rt));

    // Operators enable the cold-standby fallback controller.
    rt.enable_component("bang")?;
    println!("\n4. fallback enabled:");
    println!("   {}", states(&rt));
    println!(
        "   logger now fed by: {:?}",
        rt.drcr().providers_of("logger").unwrap()
    );

    rt.advance(SimDuration::from_secs(1));

    // The PID returns (bundle restarted after the fix).
    rt.start_bundle(pid_bundle)?;
    println!("\n5. pid bundle restarted:");
    println!("   {}", states(&rt));

    println!("\nDRCR decision log:");
    for e in rt.drcr().events().iter() {
        println!("   {}", e.event);
    }
    Ok(())
}
