//! Contract enforcement and adaptation: what happens when a component
//! *lies* about its CPU claim, and how the system defends itself.
//!
//! Three lines of defense, layered exactly as DESIGN.md describes:
//! 1. admission control keeps the *declared* budget feasible,
//! 2. kernel execution budgets make the declaration *binding*,
//! 3. the contract monitor + adaptation manager handle policy.
//!
//! Run with: `cargo run --example contract_enforcement`

use drcom::enforce::{ContractMonitor, EnforcementAction, EnforcementPolicy};
use drt::prelude::*;

/// Claims 10% of the CPU, actually burns ~60%.
fn liar() -> ComponentProvider {
    let d = ComponentDescriptor::builder("liar")
        .description("claims 10%, burns 60%")
        .periodic(100, 0, 2)
        .cpu_usage(0.10)
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_millis(6));
        }))
    })
}

/// A well-behaved victim at lower priority, claiming and using 20%.
fn victim() -> ComponentProvider {
    let d = ComponentDescriptor::builder("victim")
        .description("honest 20% worker")
        .periodic(100, 0, 5)
        .cpu_usage(0.20)
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_millis(2));
        }))
    })
}

fn victim_latency(rt: &DrtRuntime) -> f64 {
    let task = rt.drcr().task_of("victim").expect("victim task");
    rt.kernel().task_stats(task).expect("stats").average()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== scenario 1: no enforcement — the liar starves its neighbour ===");
    let mut rt = DrtRuntime::new(KernelConfig::new(8).with_timer(TimerJitterModel::ideal()));
    rt.install_component("demo.liar", liar())?;
    rt.install_component("demo.victim", victim())?;
    rt.advance(SimDuration::from_secs(2));
    println!(
        "victim average scheduling latency: {:.1} µs (delayed by the liar's stolen cycles)",
        victim_latency(&rt) / 1_000.0
    );

    println!("\n=== scenario 2: kernel budgets — the claim becomes binding ===");
    let mut rt = DrtRuntime::new(KernelConfig::new(8).with_timer(TimerJitterModel::ideal()));
    rt.drcr_mut().set_budget_enforcement(true);
    rt.install_component("demo.liar", liar())?;
    rt.install_component("demo.victim", victim())?;
    rt.advance(SimDuration::from_secs(2));
    let liar_task = rt.drcr().task_of("liar").expect("liar task");
    println!(
        "victim average scheduling latency: {:.1} µs (liar clamped to its 10%)",
        victim_latency(&rt) / 1_000.0
    );
    println!(
        "liar budget overruns counted by the kernel: {}",
        rt.kernel().task_budget_overruns(liar_task).unwrap()
    );

    println!("\n=== scenario 3: monitor + policy — the liar is suspended ===");
    let mut rt = DrtRuntime::new(KernelConfig::new(8).with_timer(TimerJitterModel::ideal()));
    rt.install_component("demo.liar", liar())?;
    rt.install_component("demo.victim", victim())?;
    let mut monitor = ContractMonitor::new(EnforcementPolicy {
        tolerance: 1.5,
        action: EnforcementAction::Suspend,
        min_window: SimDuration::from_millis(200),
    });
    monitor.check(&mut rt)?; // baseline
    rt.advance(SimDuration::from_millis(500));
    for violation in monitor.check(&mut rt)? {
        println!("detected: {violation}");
    }
    println!(
        "liar state: {:?}; victim keeps running cleanly",
        rt.component_state("liar").unwrap()
    );

    println!("\nDRCR transition log (scenario 3):");
    for t in rt.drcr().transitions() {
        println!("  {t}");
    }
    Ok(())
}
