//! Event-driven pipeline: a periodic detector streams alarms over a
//! mailbox to an aperiodic handler (released per arrival, never by the
//! timer) that journals them into an `RTAI.FIFO` byte stream, which the
//! non-real-time side drains — three IPC carriers, two release policies,
//! one pipeline.
//!
//! Run with: `cargo run --example event_pipeline`

use drt::prelude::*;

fn detector() -> ComponentProvider {
    let d = ComponentDescriptor::builder("detect")
        .description("anomaly detector, 200 Hz, fires sporadic alarms")
        .periodic(200, 0, 2)
        .cpu_usage(0.10)
        .outport("alarms", PortInterface::Mailbox, DataType::Byte, 16)
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(200));
            // A bursty anomaly pattern: every 37th cycle, a burst of 3.
            if io.cycle().is_multiple_of(37) {
                for sev in 1..=3u8 {
                    let _ = io.write("alarms", &[sev, io.cycle() as u8]).unwrap();
                }
            }
        }))
    })
}

fn handler() -> ComponentProvider {
    let d = ComponentDescriptor::builder("handle")
        .description("aperiodic alarm handler: woken per arrival")
        .aperiodic(0, 1) // most urgent: alarms preempt the detector
        .cpu_usage(0.05)
        .inport("alarms", PortInterface::Mailbox, DataType::Byte, 16)
        .outport("journl", PortInterface::Fifo, DataType::Byte, 64)
        .build()
        .expect("descriptor");
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            while let Ok(Some(alarm)) = io.read("alarms") {
                io.compute(SimDuration::from_micros(80));
                let record = format!("sev{} at cycle {}\n", alarm[0], alarm[1]);
                let _ = io.write("journl", record.as_bytes()).unwrap();
            }
        }))
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DrtRuntime::new(KernelConfig::new(29).with_timer(TimerJitterModel::ideal()));
    rt.install_component("demo.detect", detector())?;
    rt.install_component("demo.handle", handler())?;
    println!(
        "deployed: detect={:?} handle={:?}",
        rt.component_state("detect").unwrap(),
        rt.component_state("handle").unwrap()
    );

    rt.advance(SimDuration::from_secs(2));

    let handle_task = rt.drcr().task_of("handle").expect("task");
    {
        let kernel = rt.kernel();
        let alarms = kernel.mailboxes().get("alarms").expect("channel");
        println!(
            "after 2 s: {} alarms fired, {} handled, handler ran {} cycles (event-driven)",
            alarms.sent_count(),
            alarms.received_count(),
            kernel.task_cycles(handle_task).unwrap(),
        );
    }

    // The non-RT side drains the journal stream through the kernel API —
    // the same path a logging bundle would use.
    let journal = {
        let mut kernel = rt.kernel_mut();
        let bytes = kernel.fifos_mut().get("journl", 4096)?;
        String::from_utf8_lossy(&bytes).into_owned()
    };
    let lines: Vec<&str> = journal.lines().collect();
    println!("journal carried {} records; first three:", lines.len());
    for line in lines.iter().take(3) {
        println!("  {line}");
    }

    // An external producer can inject an alarm too: the handler wakes.
    let before = rt.kernel().task_cycles(handle_task).unwrap();
    rt.post("alarms", &[9, 0])?;
    rt.advance(SimDuration::from_millis(5));
    println!(
        "external alarm posted: handler ran {} extra cycle(s)",
        rt.kernel().task_cycles(handle_task).unwrap() - before
    );
    Ok(())
}
