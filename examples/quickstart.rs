//! Quickstart: deploy one declarative real-time component and watch the
//! DRCR manage it.
//!
//! Run with: `cargo run --example quickstart`

use drt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Boot the split container: an RTAI-like kernel underneath, an
    // OSGi-like framework on top, the DRCR in between.
    let mut rt = DrtRuntime::new(KernelConfig::new(42));

    // Declare the component's real-time contract. The XML form of this
    // descriptor is what a bundle would ship; the builder is the
    // Rust-native equivalent.
    let descriptor = ComponentDescriptor::builder("blink")
        .description("a 10 Hz periodic worker")
        .periodic(10, 0, 2) // 10 Hz, CPU 0, priority 2
        .cpu_usage(0.05) // claims 5% of the CPU
        .build()?;

    // Pair the contract with the real-time logic and deploy it as a bundle.
    rt.install_component(
        "demo.blink",
        ComponentProvider::new(descriptor, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_micros(500));
                if io.cycle().is_multiple_of(10) {
                    io.log(format!("blink #{}", io.cycle()));
                }
            }))
        }),
    )?;

    // The DRCR resolved the (trivial) constraints and activated it.
    println!("state after deployment: {:?}", rt.component_state("blink"));
    assert_eq!(rt.component_state("blink"), Some(ComponentState::Active));

    // Run one second of virtual time.
    rt.advance(SimDuration::from_secs(1));
    let task = rt.drcr().task_of("blink").expect("active component");
    println!(
        "cycles completed: {}",
        rt.kernel().task_cycles(task).unwrap()
    );

    // Use the management service like an external adaptation manager would.
    let mgmt = rt.management("blink").expect("management service");
    mgmt.suspend()?;
    rt.process();
    println!("state after suspend:    {:?}", rt.component_state("blink"));
    rt.advance(SimDuration::from_secs(1));
    mgmt.resume()?;
    rt.process();
    println!("state after resume:     {:?}", rt.component_state("blink"));

    // The DRCR logged everything it did.
    println!("\nDRCR transitions:");
    for t in rt.drcr().transitions() {
        println!("  {t}");
    }
    Ok(())
}
