//! Architecture-described deployment: declare a whole pipeline as an
//! [`Assembly`] with explicit connections, validate it *before* anything
//! touches the kernel, and deploy/undeploy it atomically.
//!
//! Run with: `cargo run --example assembly`

use drcom::adl::Assembly;
use drt::prelude::*;

fn stage(name: &str, input: Option<&str>, output: Option<&str>, hz: u32) -> ComponentProvider {
    let mut b = ComponentDescriptor::builder(name)
        .periodic(hz, 0, 3)
        .cpu_usage(0.05);
    if let Some(i) = input {
        b = b.inport(i, PortInterface::Shm, DataType::Integer, 1);
    }
    if let Some(o) = output {
        b = b.outport(o, PortInterface::Shm, DataType::Integer, 1);
    }
    let input = input.map(str::to_string);
    let output = output.map(str::to_string);
    ComponentProvider::new(b.build().expect("descriptor"), move || {
        let input = input.clone();
        let output = output.clone();
        Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
            let upstream = input
                .as_deref()
                .and_then(|p| io.read(p).ok().flatten())
                .map(|buf| i32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")))
                .unwrap_or(1);
            io.compute(SimDuration::from_micros(200));
            if let Some(o) = output.as_deref() {
                io.write(o, &(upstream + 1).to_le_bytes()).expect("write");
            }
        }))
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DrtRuntime::new(KernelConfig::new(12));

    // A three-stage processing pipeline, declared as an architecture.
    let pipeline = Assembly::new("pipe")
        .member(stage("acq", None, Some("raw"), 1000))
        .member(stage("filt", Some("raw"), Some("clean"), 1000))
        .member(stage("ctrl", Some("clean"), None, 500))
        .connect("acq", "raw", "filt")
        .connect("filt", "clean", "ctrl");
    println!("validating pipeline architecture...");
    pipeline.validate().expect("architecture is sound");

    let deployed = pipeline.deploy(&mut rt).expect("deploy");
    println!("deployed {} members:", deployed.bundles().len());
    for name in ["acq", "filt", "ctrl"] {
        println!("  {name}: {:?}", rt.component_state(name).unwrap());
    }

    rt.advance(SimDuration::from_secs(1));
    {
        let kernel = rt.kernel();
        let clean = kernel.shm().get("clean").expect("channel exists");
        println!(
            "after 1 s: {} frames through stage 2 ({} consumed by stage 3)",
            clean.write_count(),
            clean.read_count()
        );
    }

    // A broken architecture is refused before deployment.
    let broken = Assembly::new("broken")
        .member(stage("acq", None, Some("raw"), 1000))
        .member(stage("ctrl", Some("clean"), None, 500)) // nothing provides `clean`
        .connect("acq", "raw", "ctrl"); // and `ctrl` has no `raw` inport
    println!("\nvalidating a broken architecture:");
    match broken.validate() {
        Ok(()) => unreachable!("must not validate"),
        Err(errors) => {
            for e in errors {
                println!("  rejected: {e}");
            }
        }
    }

    deployed.undeploy(&mut rt)?;
    println!(
        "\nundeployed; components remaining: {:?}",
        rt.drcr().component_names()
    );
    Ok(())
}
